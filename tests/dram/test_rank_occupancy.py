"""Tests for the per-rank row-open occupancy accounting."""

from repro.dram import DDR4_3200, DDR4_GEOMETRY, CommandType, DRAMChannel

ACT, PRE, RD = (
    CommandType.ACTIVATE, CommandType.PRECHARGE, CommandType.READ,
)


def channel():
    return DRAMChannel(DDR4_3200, DDR4_GEOMETRY)


class TestOpenCycles:
    def test_never_opened(self):
        ch = channel()
        assert ch.rank_open_cycles(0, 1000) == 0

    def test_open_interval_counts_live(self):
        ch = channel()
        ch.issue(ACT, 0, 0, 0, 100, row=1)
        assert ch.rank_open_cycles(0, 160) == 60

    def test_closed_interval_frozen(self):
        ch = channel()
        ch.issue(ACT, 0, 0, 0, 0, row=1)
        ch.issue(PRE, 0, 0, 0, DDR4_3200.RAS)
        assert ch.rank_open_cycles(0, 10_000) == DDR4_3200.RAS

    def test_overlapping_banks_count_once(self):
        # Two banks open with overlapping lifetimes: the rank is "open"
        # for the union, not the sum.
        ch = channel()
        ch.issue(ACT, 0, 0, 0, 0, row=1)
        ch.issue(ACT, 0, 1, 0, DDR4_3200.RRD_S, row=1)
        ch.issue(PRE, 0, 0, 0, DDR4_3200.RAS)
        t2 = DDR4_3200.RRD_S + DDR4_3200.RAS
        ch.issue(PRE, 0, 1, 0, t2)
        assert ch.rank_open_cycles(0, 10_000) == t2

    def test_auto_precharge_closes_rank(self):
        ch = channel()
        ch.issue(ACT, 0, 0, 0, 0, row=1)
        t = max(DDR4_3200.RCD, DDR4_3200.RAS - DDR4_3200.RTP)
        ch.issue(RD, 0, 0, 0, t, auto_precharge=True)
        assert ch.ranks[0].open_banks == 0
        assert ch.rank_open_cycles(0, 10_000) == t

    def test_ranks_independent(self):
        ch = channel()
        ch.issue(ACT, 0, 0, 0, 0, row=1)
        ch.issue(ACT, 1, 0, 0, 50, row=1)
        assert ch.rank_open_cycles(0, 100) == 100
        assert ch.rank_open_cycles(1, 100) == 50

"""Tests for the burst-level coding pipeline."""

import numpy as np
import pytest

from repro.coding import (
    BURST_FORMATS,
    LINE_BYTES,
    line_zeros,
    precompute_line_zeros,
    raw_line_zeros,
    scheme_for,
)


class TestBurstFormats:
    def test_paper_burst_lengths(self):
        # Section 4.4: BL8 baseline, BL10 for MiLC/CAFO, BL16 for 3-LWC;
        # BL12 for the Section 7.5.3 intermediate code.
        assert BURST_FORMATS["raw"].burst_length == 8
        assert BURST_FORMATS["lwc12"].burst_length == 12
        assert BURST_FORMATS["dbi"].burst_length == 8
        assert BURST_FORMATS["milc"].burst_length == 10
        assert BURST_FORMATS["3lwc"].burst_length == 16
        assert BURST_FORMATS["cafo2"].burst_length == 10
        assert BURST_FORMATS["cafo4"].burst_length == 10

    def test_bus_cycles_are_half_burst(self):
        assert BURST_FORMATS["dbi"].bus_cycles == 4
        assert BURST_FORMATS["milc"].bus_cycles == 5
        assert BURST_FORMATS["3lwc"].bus_cycles == 8

    def test_codec_latency(self):
        assert BURST_FORMATS["dbi"].extra_latency == 0
        assert BURST_FORMATS["milc"].extra_latency == 1
        assert BURST_FORMATS["cafo4"].extra_latency == 4

    def test_scheme_registry(self):
        assert scheme_for("milc").name == "milc"
        with pytest.raises(KeyError):
            scheme_for("nonsense")


class TestLineZeros:
    def setup_method(self):
        rng = np.random.default_rng(16)
        self.lines = rng.integers(0, 256, size=(40, LINE_BYTES), dtype=np.uint8)

    def test_all_real_schemes_work(self):
        # bl12/bl14 are burst-length placeholders for the Figure 20
        # sweep; every scheme with an actual codec must count zeros.
        for name in ("raw", "dbi", "milc", "3lwc", "lwc12", "cafo2",
                     "cafo4"):
            zeros = line_zeros(name, self.lines)
            assert zeros.shape == (40,)
            assert (zeros >= 0).all()

    def test_sweep_placeholders_have_no_codec(self):
        import pytest as _pytest

        for name in ("bl12", "bl14"):
            assert name in BURST_FORMATS
            with _pytest.raises(KeyError):
                line_zeros(name, self.lines)

    def test_single_line_accepted(self):
        zeros = line_zeros("dbi", self.lines[0])
        assert zeros.shape == (1,)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            line_zeros("dbi", np.zeros((3, 32), dtype=np.uint8))

    def test_unknown_scheme(self):
        with pytest.raises(KeyError):
            line_zeros("huffman", self.lines)

    def test_raw_matches_bit_count(self):
        zeros = raw_line_zeros(self.lines)
        bits = np.unpackbits(self.lines, axis=1)
        assert (zeros == 512 - bits.sum(axis=1)).all()

    def test_bounds_per_scheme(self):
        # Structural upper bounds on zeros per 64-byte line.
        assert line_zeros("dbi", self.lines).max() <= 4 * 64
        assert line_zeros("3lwc", self.lines).max() <= 3 * 64
        assert line_zeros("milc", self.lines).max() <= 80 * 8

    def test_zero_line_ordering(self):
        # On an all-zero line the sparse codes should crush DBI.
        line = np.zeros((1, LINE_BYTES), dtype=np.uint8)
        assert line_zeros("3lwc", line)[0] == 0
        assert line_zeros("milc", line)[0] <= 2
        assert line_zeros("dbi", line)[0] == 64

    def test_precompute_covers_requested_schemes(self):
        table = precompute_line_zeros(self.lines, ("dbi", "milc", "3lwc", "cafo2"))
        assert set(table) == {"dbi", "milc", "3lwc", "cafo2"}
        for name, zeros in table.items():
            assert (zeros == line_zeros(name, self.lines)).all()

"""The policy registry: names, builders, docs, and extension hooks."""

import pytest

from repro.core import framework
from repro.core.decision import MiLCOnlyPolicy, MiLPolicy
from repro.core.policies import (
    PolicyContext,
    get_policy,
    known_policy,
    make_factory,
    policy_names,
    policy_table,
    register_policy,
    unregister_policy,
)
from repro.controller.controller import AlwaysScheme

EXPECTED_ORDER = (
    "raw", "dbi", "milc", "mil", "mil-adaptive", "mil-lwc12", "cafo2",
    "cafo4", "3lwc", "bl12", "bl14",
)


class TestBuiltinRegistrations:
    def test_policy_order_is_stable(self):
        # The presentation order of every table and sweep; also the
        # order the pre-registry POLICIES tuple pinned.
        assert policy_names() == EXPECTED_ORDER

    def test_legacy_policies_view_is_live(self):
        assert framework.POLICIES == policy_names()

        @register_policy("_tmp_policy", schemes=("dbi",),
                         description="t")
        def _build(ctx):
            return lambda: AlwaysScheme("dbi")

        try:
            assert "_tmp_policy" in framework.POLICIES
        finally:
            unregister_policy("_tmp_policy")
        assert "_tmp_policy" not in framework.POLICIES

    def test_every_builtin_builds(self):
        for name in EXPECTED_ORDER:
            factory = make_factory(name)
            policy = factory()
            assert hasattr(policy, "choose")
            assert hasattr(policy, "extra_cl")

    def test_builder_types(self):
        assert isinstance(make_factory("dbi")(), AlwaysScheme)
        assert isinstance(make_factory("milc")(), MiLCOnlyPolicy)
        assert isinstance(make_factory("mil")(), MiLPolicy)

    def test_mil_lwc12_uses_the_intermediate_code(self):
        policy = make_factory("mil-lwc12")()
        assert policy.config.long_scheme == "lwc12"

    def test_mil_adaptive_enables_the_fallback_tier(self):
        policy = make_factory("mil-adaptive")()
        assert policy.config.short_lookahead == 12

    def test_unknown_policy_lists_known_set(self):
        with pytest.raises(KeyError, match="huffman"):
            make_factory("huffman")
        assert not known_policy("huffman")

    def test_overrides_rejected_outside_mil_family(self):
        with pytest.raises(ValueError, match="dbi"):
            make_factory("dbi", mil_overrides={"lookahead": 5})

    def test_overrides_reach_the_config(self):
        factory = make_factory(
            "mil", mil_overrides={"write_optimization": False}
        )
        assert factory().config.write_optimization is False

    def test_energy_flags(self):
        for name in EXPECTED_ORDER:
            expected = name not in ("bl12", "bl14")
            assert get_policy(name).has_energy is expected, name


class TestGeneratedDocs:
    def test_framework_docstring_contains_every_policy(self):
        # The satellite fix: the hand-written table had drifted (it
        # omitted mil-lwc12).  Generated from the registry, it cannot.
        for name in policy_names():
            assert f"``{name}``" in framework.__doc__, name

    def test_table_matches_registry_descriptions(self):
        table = policy_table()
        assert "mil-lwc12" in table
        assert "Section 7.5.3" in table
        for name in policy_names():
            assert f"``{name}``" in table

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="mil"):
            register_policy("mil", schemes=("milc",))(lambda ctx: None)


class TestPolicyContext:
    def test_mil_config_applies_overrides(self):
        ctx = PolicyContext(mil_overrides={"lookahead": 9})
        assert ctx.mil_config().effective_lookahead == 9

    def test_mil_config_without_overrides(self):
        ctx = PolicyContext()
        assert ctx.mil_config(long_scheme="lwc12").long_scheme == "lwc12"

    def test_zeros_tables_flow_to_the_policy(self):
        tables = {"milc": None, "3lwc": None}
        policy = make_factory("mil", zeros_by_scheme=tables)()
        assert policy.zeros_by_scheme is tables


class TestRunSpecValidation:
    def test_spec_rejects_unknown_policy(self):
        from repro.campaign.spec import RunSpec

        with pytest.raises(KeyError, match="huffman"):
            RunSpec(benchmark="GUPS", policy="huffman")

    def test_spec_accepts_late_registrations(self):
        from repro.campaign.spec import RunSpec

        @register_policy("_tmp_spec_policy", schemes=("dbi",),
                         description="t")
        def _build(ctx):
            return lambda: AlwaysScheme("dbi")

        try:
            spec = RunSpec(benchmark="GUPS", policy="_tmp_spec_policy")
            assert spec.policy == "_tmp_spec_policy"
        finally:
            unregister_policy("_tmp_spec_policy")

"""Figure 4: distribution of idle cycles between successive bus bursts.

The paper observes that back-to-back transactions are only ~13 % of the
cases; the rest of the gaps — especially the 1-15-cycle ones — are the
head-room MiL spends on longer codewords.
"""

from __future__ import annotations

from ..analysis.metrics import GAP_BUCKETS, bucket_label
from ..campaign import RunSpec
from ..system.machine import NIAGARA_SERVER
from ..workloads.benchmarks import BENCHMARK_ORDER
from .base import ExperimentResult
from .runner import EXPERIMENT_ACCESSES_PER_CORE, gather

__all__ = ["run_experiment", "plan"]


def plan(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> list[RunSpec]:
    return [
        RunSpec(benchmark=bench, system=NIAGARA_SERVER.name, policy="dbi",
                accesses_per_core=accesses_per_core)
        for bench in BENCHMARK_ORDER
    ]


def run_experiment(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> ExperimentResult:
    runs = gather(plan(accesses_per_core))
    labels = [bucket_label(b) for b in GAP_BUCKETS]
    rows = []
    back_to_back = []
    for bench in BENCHMARK_ORDER:
        summary = runs[RunSpec(benchmark=bench, system=NIAGARA_SERVER.name,
                               policy="dbi",
                               accesses_per_core=accesses_per_core)]
        total = sum(summary.idle_gaps.values()) or 1
        fracs = [summary.idle_gaps.get(lbl, 0) / total for lbl in labels]
        back_to_back.append(fracs[0])
        rows.append([bench] + fracs)

    result = ExperimentResult(
        experiment="fig04",
        title=(
            "Figure 4: idle-cycle distribution between successive DDR4 "
            "bus transactions (fraction per gap bucket)"
        ),
        headers=["benchmark"] + labels,
        rows=rows,
        paper_claim=(
            "bus transactions occur back-to-back in only ~13% of cases"
        ),
    )
    result.observations["mean_back_to_back"] = (
        sum(back_to_back) / len(back_to_back)
    )
    return result


if __name__ == "__main__":
    print(run_experiment().format())

"""The timing protocol every registered benchmark runs under.

One protocol for all benchmarks, so numbers taken months apart remain
comparable:

* **warmup** calls populate caches, lookup tables, and the allocator;
* each of **repeats** samples times a batch of ``calls_per_sample``
  thunk calls, sized so a sample is long enough for the clock to
  resolve (auto-calibrated once, before the warmup);
* the **garbage collector is disabled** across the measured region (and
  restored after), so a collection pause cannot land inside a sample;
* the timebase is :func:`repro.telemetry.clock.monotonic_ts` — the same
  monotonic epoch the telemetry subsystem stamps traces with;
* reported statistics are **min**, **median**, and **MAD** (median
  absolute deviation) of the per-op nanosecond samples.  Regression
  comparisons use the *min*: on a quiet machine it estimates the true
  cost, and every source of noise only ever adds time.
"""

from __future__ import annotations

import gc
import statistics
from dataclasses import dataclass

from ..telemetry.clock import monotonic_ts

__all__ = ["DEFAULT_REPEATS", "DEFAULT_WARMUP", "Measurement", "measure"]

DEFAULT_REPEATS = 7
DEFAULT_WARMUP = 2

# A sample shorter than this is clock-resolution noise; calibration
# batches thunk calls until one sample crosses it.
_TARGET_SAMPLE_S = 5e-3
_MAX_CALLS_PER_SAMPLE = 4096


@dataclass(frozen=True)
class Measurement:
    """Per-op wall-time samples for one benchmark run."""

    samples_ns: tuple  # one per repeat, already normalised per op
    repeats: int
    warmup: int
    inner_ops: int
    calls_per_sample: int

    @property
    def min_ns(self) -> float:
        return min(self.samples_ns)

    @property
    def median_ns(self) -> float:
        return statistics.median(self.samples_ns)

    @property
    def mad_ns(self) -> float:
        med = self.median_ns
        return statistics.median(abs(s - med) for s in self.samples_ns)

    @property
    def ops_per_sec(self) -> float:
        return 1e9 / self.min_ns if self.min_ns > 0 else float("inf")

    def as_dict(self) -> dict:
        return {
            "repeats": self.repeats,
            "warmup": self.warmup,
            "inner_ops": self.inner_ops,
            "calls_per_sample": self.calls_per_sample,
            "ns_per_op": {
                "min": self.min_ns,
                "median": self.median_ns,
                "mad": self.mad_ns,
            },
            "ops_per_sec": self.ops_per_sec,
        }


def _calibrate(thunk, inner_ops: int) -> int:
    """Pick calls-per-sample so one sample spans >= the target time."""
    start = monotonic_ts()
    thunk()
    elapsed = monotonic_ts() - start
    if elapsed >= _TARGET_SAMPLE_S:
        return 1
    if elapsed <= 0:
        return _MAX_CALLS_PER_SAMPLE
    calls = int(_TARGET_SAMPLE_S / elapsed) + 1
    return max(1, min(calls, _MAX_CALLS_PER_SAMPLE))


def measure(
    thunk,
    *,
    repeats: int = DEFAULT_REPEATS,
    warmup: int = DEFAULT_WARMUP,
    inner_ops: int = 1,
) -> Measurement:
    """Time ``thunk`` under the protocol; returns a :class:`Measurement`.

    ``inner_ops`` is how many logical operations one thunk call performs
    (e.g. cache lines processed); the reported per-op numbers divide by
    ``calls_per_sample * inner_ops``.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")

    gc_was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        calls = _calibrate(thunk, inner_ops)
        for _ in range(warmup):
            for _ in range(calls):
                thunk()
        samples = []
        per_sample_ops = calls * inner_ops
        for _ in range(repeats):
            start = monotonic_ts()
            for _ in range(calls):
                thunk()
            elapsed = monotonic_ts() - start
            samples.append(elapsed * 1e9 / per_sample_ops)
    finally:
        if gc_was_enabled:
            gc.enable()

    return Measurement(
        samples_ns=tuple(samples),
        repeats=repeats,
        warmup=warmup,
        inner_ops=inner_ops,
        calls_per_sample=calls,
    )

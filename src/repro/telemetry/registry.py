"""Named metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricRegistry` owns a flat namespace of hierarchically named
instruments (``controller.ch0.rdq.occupancy``, ``dram.ch1.act_count``);
dots are only a naming convention, but the exporters and the pretty
printer group on them.  Instruments are created once at wiring time and
then mutated with plain attribute arithmetic — the per-event cost is an
integer add, never a dict lookup.

Registries are deliberately not thread-safe: one simulation run owns
one registry, and the campaign layer keeps its own.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = ["Counter", "Gauge", "Histogram", "MetricRegistry"]


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}


class Gauge:
    """Last-written value with min/max tracking."""

    __slots__ = ("name", "value", "min", "max", "updates")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.min = None
        self.max = None
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "value": self.value,
            "min": self.min,
            "max": self.max,
            "updates": self.updates,
        }


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max.

    ``bounds`` are inclusive upper edges of the finite buckets; one
    overflow bucket catches everything above the last edge.  The edges
    are frozen at construction — observation is a ``bisect`` plus an
    add, with no allocation.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")
    kind = "histogram"

    DEFAULT_BOUNDS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256)

    def __init__(self, name: str, bounds=None):
        self.name = name
        self.bounds = tuple(bounds) if bounds is not None else self.DEFAULT_BOUNDS
        if list(self.bounds) != sorted(self.bounds) or not self.bounds:
            raise ValueError(f"histogram {name!r}: bounds must be sorted, non-empty")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def observe(self, value) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


class MetricRegistry:
    """Get-or-create home for named instruments.

    ``counter``/``gauge``/``histogram`` return the existing instrument
    when the name is already registered (so independent probes may share
    one) and raise if the name is bound to a different instrument kind.
    """

    def __init__(self):
        self._metrics: dict[str, object] = {}

    def _get(self, name: str, cls, *args):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"not {cls.kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, bounds=None) -> Histogram:
        return self._get(name, Histogram, bounds)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str):
        return self._metrics[name]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def as_dict(self) -> dict:
        """``{name: instrument.as_dict()}`` in sorted-name order."""
        return {name: self._metrics[name].as_dict() for name in self.names()}

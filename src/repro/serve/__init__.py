"""Long-running campaign service: async job API over the campaign engine.

``repro.serve`` promotes :class:`~repro.campaign.runner.CampaignRunner`
from a CLI loop to a resident asyncio service:

* :mod:`~repro.serve.jobs` — the job model and manager: submit /
  status / cancel / list, priority + FIFO scheduling, bounded queues
  with back-pressure, per-key lease coalescing;
* :mod:`~repro.serve.events` — seq-numbered per-job event logs with
  snapshot-plus-tail subscription (a client that connects mid-campaign
  sees a consistent prefix and then the live tail);
* :mod:`~repro.serve.shards` — the lease broker: local process shards
  (``REPRO_SERVE_SHARDS`` / ``--shards``) plus remote TCP workers,
  with lease tracking, heartbeats, death detection, and respawn;
* :mod:`~repro.serve.worker` — the ``repro worker`` daemon that dials
  a service and contributes one remote execution slot;
* :mod:`~repro.serve.journal` — the append-only JSONL job table that
  lets a restarted service resume queued and leased work;
* :mod:`~repro.serve.store` — the multi-tenant result store layered on
  the content-addressed campaign cache, with per-namespace quotas and
  an eviction/GC sweep;
* :mod:`~repro.serve.service` — :class:`CampaignService`, the
  scheduler loop gluing the above together with retry-with-backoff;
* :mod:`~repro.serve.server` — the newline-delimited-JSON HTTP API
  (TCP and Unix-socket listeners on asyncio streams);
* :mod:`~repro.serve.client` — the synchronous Python client the
  ``repro submit`` / ``repro jobs`` verbs are built on.

The correctness oracle for all of it: a campaign submitted through the
service produces the same content-addressed cache keys and
byte-identical ``RunSummary`` payloads as the same campaign run via
``repro campaign`` locally (see ``docs/SERVICE.md``).
"""

from .client import BackPressureError, ServeClient, ServeError
from .jobs import Job, JobManager, JobState, QueueFullError
from .journal import Journal
from .service import CampaignService, ServiceConfig, default_shards
from .shards import LeaseBroker
from .store import ResultStore
from .worker import WorkerAuthError, WorkerDaemon

__all__ = [
    "BackPressureError",
    "CampaignService",
    "Job",
    "JobManager",
    "JobState",
    "Journal",
    "LeaseBroker",
    "QueueFullError",
    "ResultStore",
    "ServeClient",
    "ServeError",
    "ServiceConfig",
    "WorkerAuthError",
    "WorkerDaemon",
    "default_shards",
]

"""Tests for the MiL decision logic (policies)."""

import numpy as np
import pytest

from repro.controller import ChannelController, MemoryRequest
from repro.core import MiLCOnlyPolicy, MiLConfig, MiLPolicy
from repro.dram import DDR4_3200, DDR4_GEOMETRY, AddressMapper, CommandType

MAPPER = AddressMapper(DDR4_GEOMETRY, channels=2)


def request(line, write=False, prefetch=False, line_id=0):
    from dataclasses import replace

    m = replace(MAPPER.map(line * 64), channel=0)
    r = MemoryRequest(address=MAPPER.reverse(m), is_write=write,
                      line_id=line_id, is_prefetch=prefetch)
    r.mapped = m
    return r


def controller_with_open_row(requests, now=100):
    """Controller whose queue holds ``requests``, rows opened."""
    mc = ChannelController(DDR4_3200, DDR4_GEOMETRY, refresh_enabled=False)
    opened = set()
    t = 0
    for req in requests:
        m = req.mapped
        key = (m.rank, m.bank_group, m.bank)
        if key not in opened:
            t = mc.channel.earliest_issue(
                CommandType.ACTIVATE, m.rank, m.bank_group, m.bank, t
            )
            mc.channel.issue(CommandType.ACTIVATE, m.rank, m.bank_group,
                             m.bank, t, row=m.row)
            opened.add(key)
        mc.enqueue(req, now)
    return mc


class TestMiLCOnly:
    def test_always_base_scheme(self):
        policy = MiLCOnlyPolicy()
        mc = controller_with_open_row([request(0)])
        assert policy.choose(mc, request(1), 200) == "milc"
        assert policy.extra_cl == 1

    def test_rejects_unknown(self):
        with pytest.raises(KeyError):
            MiLCOnlyPolicy("nope")


class TestMiLDecision:
    def test_empty_window_grants_long_code(self):
        mc = controller_with_open_row([])
        policy = MiLPolicy()
        target = request(0)
        assert policy.choose(mc, target, 500) == "3lwc"
        assert policy.long_grants == 1

    def test_ready_read_forces_base_scheme(self):
        other = request(1)  # same row as line 0: ready once row is open
        mc = controller_with_open_row([other])
        policy = MiLPolicy()
        assert policy.choose(mc, request(0), 500) == "milc"
        assert policy.base_grants == 1

    def test_prefetch_does_not_veto_long_code(self):
        other = request(1, prefetch=True)
        mc = controller_with_open_row([other])
        policy = MiLPolicy()
        assert policy.choose(mc, request(0), 500) == "3lwc"

    def test_prefetch_counts_when_configured(self):
        other = request(1, prefetch=True)
        mc = controller_with_open_row([other])
        policy = MiLPolicy(MiLConfig(count_prefetches=True))
        assert policy.choose(mc, request(0), 500) == "milc"

    def test_closed_row_request_not_ready(self):
        # A request to a closed bank cannot issue within X=8 (needs
        # ACT + tRCD = 20+), so it must not veto the long code.
        far = request(1 << 14)  # different bank, row never opened
        mc = ChannelController(DDR4_3200, DDR4_GEOMETRY,
                               refresh_enabled=False)
        mc.enqueue(far, 100)
        policy = MiLPolicy()
        assert policy.choose(mc, request(0), 500) == "3lwc"

    def test_lookahead_window_width_matters(self):
        # A read whose column timer expires 10 cycles out is invisible
        # to X=8 but visible to X=14.
        other = request(1)
        mc = controller_with_open_row([other])
        m = other.mapped
        # Push the bank's next-read time 10 cycles past "now".
        now = mc.channel.banks[m.rank][m.bank_group][m.bank].next_rd - 10
        now = max(now, 0)
        narrow = MiLPolicy(MiLConfig(lookahead=2))
        wide = MiLPolicy(MiLConfig(lookahead=30))
        assert narrow.choose(mc, request(0), now) == "3lwc"
        assert wide.choose(mc, request(0), now) == "milc"


class TestWriteOptimization:
    def zeros_tables(self, milc, lwc):
        return {
            "milc": np.array([milc], dtype=np.int64),
            "3lwc": np.array([lwc], dtype=np.int64),
        }

    def test_write_ships_sparser_code(self):
        mc = controller_with_open_row([])
        policy = MiLPolicy(
            MiLConfig(), zeros_by_scheme=self.zeros_tables(milc=10, lwc=50)
        )
        w = request(0, write=True, line_id=0)
        assert policy.choose(mc, w, 500) == "milc"
        assert policy.write_optimized == 1

    def test_write_keeps_long_code_when_sparser(self):
        mc = controller_with_open_row([])
        policy = MiLPolicy(
            MiLConfig(), zeros_by_scheme=self.zeros_tables(milc=50, lwc=10)
        )
        w = request(0, write=True, line_id=0)
        assert policy.choose(mc, w, 500) == "3lwc"
        assert policy.write_optimized == 0

    def test_reads_never_inspect_data(self):
        # Section 4.6: the controller cannot see read data at schedule
        # time, so reads always take the granted scheme.
        mc = controller_with_open_row([])
        policy = MiLPolicy(
            MiLConfig(), zeros_by_scheme=self.zeros_tables(milc=0, lwc=999)
        )
        assert policy.choose(mc, request(0, line_id=0), 500) == "3lwc"

    def test_optimization_disabled_by_config(self):
        mc = controller_with_open_row([])
        policy = MiLPolicy(
            MiLConfig(write_optimization=False),
            zeros_by_scheme=self.zeros_tables(milc=10, lwc=50),
        )
        assert policy.choose(mc, request(0, write=True), 500) == "3lwc"


class TestFallbackTier:
    def test_saturation_ships_uncoded(self):
        # Many same-row reads ready now: the extended config falls all
        # the way back to uncoded DBI bursts.
        others = [request(i, line_id=i) for i in range(1, 6)]
        mc = controller_with_open_row(others)
        policy = MiLPolicy(MiLConfig(short_lookahead=4,
                                     fallback_threshold=3))
        assert policy.choose(mc, request(0), 500) == "dbi"
        assert policy.fallback_grants == 1

    def test_light_pressure_keeps_base_code(self):
        others = [request(1, line_id=1)]
        mc = controller_with_open_row(others)
        policy = MiLPolicy(MiLConfig(short_lookahead=4,
                                     fallback_threshold=3))
        assert policy.choose(mc, request(0), 500) == "milc"

    def test_deep_read_queue_ships_uncoded(self):
        others = [request(i * (1 << 10), line_id=i) for i in range(1, 25)]
        mc = ChannelController(DDR4_3200, DDR4_GEOMETRY,
                               refresh_enabled=False)
        for r in others:
            mc.enqueue(r, 100)
        policy = MiLPolicy(MiLConfig(short_lookahead=4,
                                     fallback_queue_depth=20))
        assert policy.choose(mc, request(0), 500) == "dbi"

    def test_default_config_never_falls_back(self):
        others = [request(i, line_id=i) for i in range(1, 8)]
        mc = controller_with_open_row(others)
        policy = MiLPolicy()  # paper-faithful: milc/3lwc only
        assert policy.choose(mc, request(0), 500) == "milc"
        assert policy.fallback_grants == 0

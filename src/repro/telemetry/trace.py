"""Cycle-stamped event trace: a bounded ring buffer of spans/instants.

The :class:`TraceBuffer` records what the bus-occupancy timelines of
Figures 4-6 are made of — data-bus bursts, MiL mode decisions, drain
transitions — each stamped with the DRAM cycle it happened at (or, for
campaign-level events, the shared wall clock).  The buffer is a fixed-
capacity ring: when full it overwrites the oldest event and counts the
drop, so a long run can never exhaust memory; the tail of the run is
what survives, which is the part a divergence debug usually needs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TraceBuffer", "TraceEvent"]

DEFAULT_CAPACITY = 65_536


@dataclass(frozen=True)
class TraceEvent:
    """One trace record in the Chrome trace-event vocabulary.

    ``phase`` is the trace-event phase letter: ``"X"`` for a complete
    span (``ts`` + ``dur``), ``"i"`` for an instant, ``"C"`` for a
    counter sample.  ``ts``/``dur`` are in the emitting layer's time
    unit — DRAM cycles for run-level probes, seconds for campaign-level
    ones; the exporter scales both to trace microseconds.
    """

    name: str
    category: str
    phase: str
    ts: float
    dur: float = 0.0
    track: str = "main"
    args: tuple = ()

    def args_dict(self) -> dict:
        return dict(self.args)


class TraceBuffer:
    """Bounded ring of :class:`TraceEvent` records."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("trace capacity must be positive")
        self.capacity = capacity
        self.dropped = 0
        self._ring: list[TraceEvent | None] = [None] * capacity
        self._next = 0  # next write slot
        self._size = 0

    def append(self, event: TraceEvent) -> None:
        if self._size == self.capacity:
            self.dropped += 1
        else:
            self._size += 1
        self._ring[self._next] = event
        self._next = (self._next + 1) % self.capacity

    def emit(self, name, category, phase, ts, dur=0.0, track="main", args=()):
        """Construct-and-append convenience used by the probes."""
        self.append(TraceEvent(name, category, phase, ts, dur, track, args))

    def __len__(self) -> int:
        return self._size

    def __iter__(self):
        """Events oldest-first."""
        if self._size < self.capacity:
            yield from (e for e in self._ring[: self._size])
        else:
            yield from (e for e in self._ring[self._next :])
            yield from (e for e in self._ring[: self._next])

    def events(self) -> list[TraceEvent]:
        return list(self)

"""Opt-in protocol audit layer: independent checks over recorded logs.

``repro.audit`` re-derives every Table 2 DRAM constraint from the
command log a :class:`~repro.dram.channel.DRAMChannel` records (with
``keep_cmd_log=True``), using a different algorithm than the channel's
own enforcement — see :mod:`repro.audit.protocol`.  It is wired into
runs the same way telemetry is: *outside* the
:class:`~repro.campaign.spec.RunSpec`, so observing a run never changes
its cache key or its summary bytes.

Three consumers:

* ``repro run --audit`` / ``repro campaign --audit`` — post-run audit
  of real workloads (campaigns propagate the request to worker
  processes through the :data:`AUDIT_ENV` environment variable);
* ``repro fuzz`` and the test-suite corpus — the seeded schedule
  fuzzer of :mod:`repro.audit.fuzz`;
* injected-violation tests — mutated legal logs proving the auditor
  catches every constraint class (``tests/audit/``).
"""

from __future__ import annotations

import os

from .protocol import ProtocolAuditor, Violation

__all__ = [
    "AUDIT_ENV",
    "AuditReport",
    "ProtocolAuditor",
    "ProtocolViolationError",
    "Violation",
    "audit_enabled",
    "audit_simulation",
]

# Environment opt-in: set to any non-empty value other than "0" to make
# every run record its command logs and audit them afterwards.  An env
# var (rather than a RunSpec field) keeps cache keys byte-identical and
# reaches campaign worker processes for free.
AUDIT_ENV = "REPRO_AUDIT"


def audit_enabled() -> bool:
    """True when the :data:`AUDIT_ENV` opt-in is set."""
    return os.environ.get(AUDIT_ENV, "") not in ("", "0")


class ProtocolViolationError(RuntimeError):
    """A post-run audit found protocol violations."""

    def __init__(self, report: "AuditReport"):
        self.report = report
        first = report.violations[0]
        super().__init__(
            f"protocol audit failed: {len(report.violations)} violation(s), "
            f"first: {first}"
        )


class AuditReport:
    """Aggregated audit outcome across the channels of one run."""

    def __init__(self) -> None:
        self.channels: list[dict] = []

    def record(
        self,
        label: str,
        commands: int,
        transactions: int,
        violations: list[Violation],
    ) -> None:
        self.channels.append(
            {
                "label": label,
                "commands": commands,
                "transactions": transactions,
                "violations": violations,
            }
        )

    @property
    def violations(self) -> list[Violation]:
        return [v for ch in self.channels for v in ch["violations"]]

    @property
    def clean(self) -> bool:
        return not self.violations

    @property
    def commands(self) -> int:
        return sum(ch["commands"] for ch in self.channels)

    def by_constraint(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for v in self.violations:
            counts[v.constraint] = counts.get(v.constraint, 0) + 1
        return counts

    def to_table(self) -> dict:
        """JSON-friendly digest (lands in ``RunSummary.stats``)."""
        return {
            "channels": len(self.channels),
            "commands": self.commands,
            "violations": len(self.violations),
            "by_constraint": self.by_constraint(),
        }

    def render(self) -> str:
        """Human-readable verdict for the CLI."""
        lines = [
            f"protocol audit: {self.commands} commands over "
            f"{len(self.channels)} channel(s)"
        ]
        if self.clean:
            lines.append("  clean: every Table 2 constraint re-derived OK")
            return "\n".join(lines)
        for constraint, count in sorted(self.by_constraint().items()):
            lines.append(f"  {constraint}: {count} violation(s)")
        for v in self.violations[:10]:
            lines.append(f"    {v}")
        if len(self.violations) > 10:
            lines.append(f"    ... {len(self.violations) - 10} more")
        return "\n".join(lines)


def audit_simulation(result, config, report: AuditReport | None = None) -> AuditReport:
    """Audit every channel of a :class:`SimulationResult`.

    Requires the simulation to have run with command recording on
    (``simulate(..., record_commands=True)``); a channel without a
    command log is reported with zero commands rather than failing, so
    partially recorded runs are visible instead of silently "clean".
    """
    if report is None:
        report = AuditReport()
    for ch, mc in enumerate(result.controllers):
        auditor = ProtocolAuditor(mc.timing, mc.geometry)
        violations = auditor.audit(
            mc.channel.command_log, mc.channel.transactions
        )
        report.record(
            label=f"channel{ch}",
            commands=len(mc.channel.command_log),
            transactions=len(mc.channel.transactions),
            violations=violations,
        )
    return report

"""Table 4: area, power, and latency of the MiLC / 3-LWC codec blocks.

Reproduced with the analytical gate-count model (the paper used Verilog
synthesis at 45 nm scaled to a 22 nm DRAM process; see
:mod:`repro.energy.codec_cost` for the substitution).  The structural
claims that matter downstream: all codec latencies fit in the single
extra DRAM cycle MiL charges on tCL (0.625 ns at DDR4-3200), and the
MiLC encoder dominates the (still negligible) area budget.
"""

from __future__ import annotations

from ..dram.timing import DDR4_3200
from ..energy.codec_cost import PAPER_TABLE4, table4
from .base import ExperimentResult

__all__ = ["run_experiment"]


def run_experiment(accesses_per_core: int | None = None) -> ExperimentResult:
    costs = table4()
    rows = []
    for name, cost in costs.items():
        paper_area, paper_power, paper_latency = PAPER_TABLE4[name]
        rows.append(
            [
                name,
                cost.area_um2,
                cost.power_mw,
                cost.latency_ns,
                paper_area,
                paper_power,
                paper_latency,
            ]
        )
    result = ExperimentResult(
        experiment="table4",
        title="Table 4: codec area (um^2) / power (mW) / latency (ns), "
              "model vs paper",
        headers=["block", "area", "power", "latency",
                 "paper_area", "paper_power", "paper_latency"],
        rows=rows,
        paper_claim=(
            "codec cost is negligible; latency (<=0.39 ns) fits in one "
            "extra DRAM cycle of tCL"
        ),
    )
    cycle = DDR4_3200.cycle_ns
    result.observations["max_latency_vs_cycle"] = (
        max(c.latency_ns for c in costs.values()) / cycle
    )
    return result


if __name__ == "__main__":
    print(run_experiment().format())

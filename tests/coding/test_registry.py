"""Registry invariants every registered codec must satisfy.

These are the structural laws the paper's Table/Figure arithmetic rests
on: the coded line must physically fit the pins x beats it claims
(Section 4.4), DDR bus occupancy is two beats per clock, encode/decode
must round-trip, and the fast ``count_zeros``/``line_zeros`` paths must
agree with actually encoding the data.  Because the checks run over
*whatever is registered*, a codec added later (even by an example
script) is held to the same laws automatically.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import registry
from repro.coding.bitops import bytes_to_bits
from repro.coding.registry import (
    LINE_BYTES,
    CodecInfo,
    NoCodecError,
    beat_layout,
    register_burst_format,
    register_codec,
    scheme_info,
    unregister_scheme,
)


def _codec_entries():
    return [
        registry.scheme_info(name) for name in registry.codec_schemes()
    ]


class TestCapacityInvariants:
    def test_code_bits_fit_pins_times_burst(self):
        # A 64-byte line is (512 / data_bits) codewords of code_bits
        # bits; the transmitted burst offers pins x burst_length bit
        # slots.  dbi: 64x9 = 576 = 72x8 exactly; 3lwc: 64x17 = 1088
        # <= 72x16 = 1152 (64 pad bits, sent as 1s).
        for info in _codec_entries():
            codec = info.codec
            blocks_per_line = (LINE_BYTES * 8) // codec.data_bits
            line_code_bits = blocks_per_line * codec.code_bits
            capacity = info.pins * info.burst_length
            assert line_code_bits <= capacity, (
                f"{info.name}: {line_code_bits} code bits do not fit "
                f"{info.pins} pins x BL{info.burst_length} = {capacity}"
            )

    def test_bus_cycles_ddr_math(self):
        # Double data rate: two beats per DRAM clock, odd lengths round
        # up (the bus is reserved in whole clocks).
        for name in registry.scheme_names():
            info = scheme_info(name)
            assert info.bus_cycles == (info.burst_length + 1) // 2

    def test_every_codec_divides_the_line(self):
        for info in _codec_entries():
            assert (LINE_BYTES * 8) % info.codec.data_bits == 0


class TestRoundTripsAndCounts:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_encode_decode_round_trip(self, seed):
        rng = np.random.default_rng(seed)
        lines = rng.integers(0, 256, size=(4, LINE_BYTES), dtype=np.uint8)
        for info in _codec_entries():
            codec = info.codec
            arranged = (
                beat_layout(lines) if info.layout == "beat" else lines
            )
            bits = bytes_to_bits(arranged)
            blocks = bits.reshape(bits.shape[0], -1, codec.data_bits)
            decoded = codec.decode_blocks(codec.encode_blocks(blocks))
            assert (decoded == blocks).all(), info.name

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**32 - 1))
    def test_line_zeros_matches_encoding(self, seed):
        # The vectorised line_zeros path must agree with literally
        # encoding the line and counting 0s — modulo per-codec constant
        # overhead bits (3lwc's 64 pad 1-bits add no zeros; raw has no
        # codec).  count_zeros is defined as zeros in the *codeword*,
        # so the two must match exactly.
        rng = np.random.default_rng(seed)
        lines = rng.integers(0, 256, size=(4, LINE_BYTES), dtype=np.uint8)
        for info in _codec_entries():
            codec = info.codec
            arranged = (
                beat_layout(lines) if info.layout == "beat" else lines
            )
            bits = bytes_to_bits(arranged)
            blocks = bits.reshape(bits.shape[0], -1, codec.data_bits)
            encoded = codec.encode_blocks(blocks)
            literal = (
                (encoded == 0).sum(axis=(1, 2)).astype(np.int64)
            )
            fast = info.line_zeros(lines)
            assert (fast == literal).all(), info.name

    def test_generic_fallback_counts_without_fast_path(self):
        # A codec with no count_zeros_bytes override goes through the
        # bytes_to_bits fallback; an identity byte code makes its
        # correct answer obvious (the raw popcount).
        from repro.coding.base import CodingScheme

        class _PlainByte(CodingScheme):
            name = "_plain"
            data_bits = 8
            code_bits = 8

            def encode_blocks(self, blocks):
                return np.asarray(blocks, dtype=np.uint8)

            def decode_blocks(self, blocks):
                return np.asarray(blocks, dtype=np.uint8)

        register_codec("_tmp_plain", burst_length=8, extra_latency=0)(
            _PlainByte
        )
        try:
            rng = np.random.default_rng(3)
            lines = rng.integers(0, 256, size=(6, LINE_BYTES),
                                 dtype=np.uint8)
            bits = np.unpackbits(lines, axis=1)
            got = scheme_info("_tmp_plain").line_zeros(lines)
            assert (got == 512 - bits.sum(axis=1)).all()
        finally:
            unregister_scheme("_tmp_plain")

    def test_raw_count_fn_path(self):
        rng = np.random.default_rng(7)
        lines = rng.integers(0, 256, size=(10, LINE_BYTES), dtype=np.uint8)
        info = scheme_info("raw")
        assert info.has_codec and info.factory is None
        bits = np.unpackbits(lines, axis=1)
        assert (info.line_zeros(lines) == 512 - bits.sum(axis=1)).all()


class TestRegistrationRules:
    def test_no_codec_error_names_the_scheme(self):
        for name in ("bl12", "bl14"):
            info = scheme_info(name)
            assert not info.has_codec
            with pytest.raises(NoCodecError, match=name):
                info.codec
            with pytest.raises(NoCodecError, match=name):
                info.line_zeros(np.zeros((1, LINE_BYTES), dtype=np.uint8))

    def test_no_codec_error_is_a_key_error(self):
        # Legacy callers catch KeyError; the refined error must still be
        # one.
        assert issubclass(NoCodecError, KeyError)

    def test_unknown_scheme_lists_known_set(self):
        with pytest.raises(KeyError, match="huffman"):
            scheme_info("huffman")

    def test_conflicting_reregistration_rejected(self):
        register_burst_format("_tmp_scheme", burst_length=9,
                              extra_latency=1)
        try:
            with pytest.raises(ValueError, match="_tmp_scheme"):
                register_burst_format("_tmp_scheme", burst_length=11,
                                      extra_latency=1)
            # Idempotent re-registration (module reload) is tolerated.
            register_burst_format("_tmp_scheme", burst_length=9,
                                  extra_latency=1)
        finally:
            unregister_scheme("_tmp_scheme")

    def test_invalid_layout_rejected(self):
        with pytest.raises(ValueError, match="layout"):
            register_codec("_tmp_bad", burst_length=8, extra_latency=0,
                           layout="diagonal")

    def test_codec_is_a_lazy_singleton(self):
        calls = []

        @register_codec("_tmp_lazy", burst_length=8, extra_latency=0)
        def _factory():
            calls.append(1)
            return object()

        try:
            info = scheme_info("_tmp_lazy")
            assert calls == []  # nothing built at registration time
            assert info.codec is info.codec
            assert calls == [1]
        finally:
            unregister_scheme("_tmp_lazy")

    def test_views_are_live(self):
        # New registrations appear in the legacy dict view immediately.
        from repro.coding.pipeline import BURST_FORMATS

        register_burst_format("_tmp_live", burst_length=18,
                              extra_latency=2)
        try:
            assert BURST_FORMATS["_tmp_live"].burst_length == 18
            assert "_tmp_live" in registry.scheme_names()
        finally:
            unregister_scheme("_tmp_live")
        assert "_tmp_live" not in BURST_FORMATS

    def test_legacy_setitem_forwards_to_registry(self):
        from repro.coding.pipeline import BURST_FORMATS, BurstFormat

        BURST_FORMATS["_tmp_set"] = BurstFormat("_tmp_set", 9, 1)
        try:
            assert scheme_info("_tmp_set").burst_length == 9
        finally:
            del BURST_FORMATS["_tmp_set"]
        assert "_tmp_set" not in BURST_FORMATS


class TestCodecInfoMetadata:
    def test_layouts_match_figure_12(self):
        # MiLC and CAFO consume bus-beat squares; DBI and the LWC
        # family consume cache-line byte order.
        assert scheme_info("milc").layout == "beat"
        assert scheme_info("cafo2").layout == "beat"
        assert scheme_info("cafo4").layout == "beat"
        assert scheme_info("dbi").layout == "line"
        assert scheme_info("3lwc").layout == "line"
        assert scheme_info("lwc12").layout == "line"

    def test_pin_widths(self):
        # DBI and the (8,17) 3-LWC borrow the DBI pins (72 wide); the
        # 64-pin codes do not.
        assert scheme_info("dbi").pins == 72
        assert scheme_info("3lwc").pins == 72
        assert scheme_info("milc").pins == 64
        assert scheme_info("lwc12").pins == 64

    def test_every_entry_has_a_description(self):
        for name in registry.scheme_names():
            assert scheme_info(name).description, name

    def test_real_schemes_are_the_energy_set(self):
        real = set(registry.real_schemes())
        assert real == {"raw", "dbi", "milc", "3lwc", "lwc12",
                        "cafo2", "cafo4"}
        assert set(registry.scheme_names()) - real == {"bl12", "bl14"}

"""Cache hierarchy filter: CPU access streams -> DRAM memory trace.

This stage plays the role SESC's cache model played for the paper: it
runs every core's access stream through private L1 data caches and a
shared L2 (with a MESI directory and a stream prefetcher at the L2),
emitting the residue — L2 demand misses, dirty L2 writebacks, and
prefetch fills — as :class:`~repro.workloads.trace.TraceRecord` entries
annotated with CPU think-time gaps.

Cores are interleaved in small round-robin chunks so the shared L2 and
the directory see a realistic mix of the eight streams, like a parallel
execution would produce.
"""

from __future__ import annotations

import numpy as np

from ..workloads.trace import MemoryTrace, TraceRecord
from .cache import Cache
from .machine import SystemConfig
from .mesi import MESIDirectory
from .prefetcher import StreamPrefetcher

__all__ = ["CoreAccessStream", "filter_through_hierarchy"]

_INTERLEAVE_CHUNK = 64  # accesses per core per round-robin turn


class CoreAccessStream:
    """One core's CPU-level access stream plus its workload knobs.

    Parameters
    ----------
    addresses, is_write:
        Parallel arrays describing the accesses in program order.
    insts_per_access:
        Non-memory instructions amortised over each access — the
        workload's arithmetic intensity, which sets memory intensity.
    dependent_fraction:
        Probability that a demand miss is serialised behind the previous
        one (pointer-chasing style), making the core latency-sensitive.
    """

    def __init__(
        self,
        addresses: np.ndarray,
        is_write: np.ndarray,
        insts_per_access: float,
        dependent_fraction: float = 0.0,
        burst_lines: int = 1,
    ):
        self.addresses = np.asarray(addresses, dtype=np.int64)
        self.is_write = np.asarray(is_write, dtype=bool)
        if self.addresses.shape != self.is_write.shape:
            raise ValueError("addresses and is_write must align")
        if insts_per_access < 0:
            raise ValueError("insts_per_access must be non-negative")
        if not 0.0 <= dependent_fraction <= 1.0:
            raise ValueError("dependent_fraction must be in [0, 1]")
        if burst_lines < 1:
            raise ValueError("burst_lines must be >= 1")
        self.insts_per_access = insts_per_access
        self.dependent_fraction = dependent_fraction
        # Programs fetch data in spurts: ``burst_lines`` consecutive
        # memory records issue back-to-back, then the accumulated think
        # time follows as one compute phase.  The mean gap is unchanged;
        # only its shape becomes bursty, which is what opens the empty
        # look-ahead windows MiL's long code needs (Figure 22).
        self.burst_lines = burst_lines

    def __len__(self) -> int:
        return len(self.addresses)


# Warm-up lines live at addresses the trace never touches (high bit set)
# so they are pure eviction fodder, never artificial hits.
_WARMUP_BIT = 1 << 45


def _warm_l2(l2, streams, config, rng) -> None:
    """Pre-fill the L2 to steady state before tracing.

    A finite trace would otherwise start with an empty L2 and emit no
    dirty writebacks until the cache fills — tens of thousands of
    accesses for a 4 MB L2.  Real applications run in steady state,
    where every fill evicts and dirty victims stream back to memory.
    Victim dirtiness follows each stream's own write density (the
    probability that a 64-byte line received at least one write).
    """
    capacity = config.l2_bytes // config.line_bytes
    per_stream = capacity // max(1, len(streams)) + 1
    for idx, stream in enumerate(streams):
        if len(stream):
            lines = stream.addresses // config.line_bytes
            touched = np.unique(lines)
            dirtied = np.unique(lines[stream.is_write])
            line_dirty_prob = len(dirtied) / max(1, len(touched))
        else:
            line_dirty_prob = 0.0
        base = _WARMUP_BIT | (idx << 36)
        dirty = rng.random(per_stream) < line_dirty_prob
        for k in range(per_stream):
            l2.fill(base + k * config.line_bytes, dirty=bool(dirty[k]))


def filter_through_hierarchy(
    streams: list[CoreAccessStream],
    config: SystemConfig,
    data_model,
    seed: int = 0,
    name: str = "trace",
    warm_caches: bool = True,
) -> MemoryTrace:
    """Run access streams through L1s + shared L2 and build the trace.

    ``data_model`` must provide ``lines_for(addresses) -> (n, 64) uint8``
    mapping line addresses to deterministic payload bytes.  With
    ``warm_caches`` (default) the shared L2 starts at steady-state
    occupancy; see :func:`_warm_l2`.
    """
    if len(streams) > config.cores:
        raise ValueError(f"{len(streams)} streams > {config.cores} cores")

    rng = np.random.default_rng(seed)
    l1s = [
        Cache(config.l1_bytes, config.l1_ways, config.line_bytes, f"L1-{i}")
        for i in range(len(streams))
    ]
    l2 = Cache(config.l2_bytes, config.l2_ways, config.line_bytes, "L2")
    directory = MESIDirectory(config.cores)
    prefetcher = StreamPrefetcher(config.prefetcher, config.line_bytes)
    if warm_caches:
        _warm_l2(l2, streams, config, rng)
        l2.hits = l2.misses = l2.writebacks = 0

    records: list[list[TraceRecord]] = [[] for _ in streams]
    # CPU cycles of work accumulated since each core's last trace record.
    pending_cpu_cycles = [0.0 for _ in streams]
    banked_gap = [0 for _ in streams]  # gap cycles deferred by burstiness
    emitted = [0 for _ in streams]
    positions = [0 for _ in streams]
    cpu_accesses = 0

    def emit(core: int, address: int, is_write: bool, prefetch: bool) -> None:
        gap = config.cpu_to_dram_cycles(pending_cpu_cycles[core])
        pending_cpu_cycles[core] = 0.0
        if prefetch:
            # Prefetches trickle out of the prefetcher at its issue
            # pacing instead of landing in one batch.
            gap = max(gap, config.prefetcher.spacing)
        burst = streams[core].burst_lines
        if burst > 1 and not prefetch:
            banked_gap[core] += gap
            emitted[core] += 1
            if emitted[core] % burst == 0:
                gap = banked_gap[core]
                banked_gap[core] = 0
            else:
                gap = 0
        dependent = (
            not is_write
            and not prefetch
            and rng.random() < streams[core].dependent_fraction
        )
        records[core].append(
            TraceRecord(
                core=core,
                gap=gap,
                address=address,
                is_write=is_write,
                line_id=-1,  # assigned after all records exist
                is_prefetch=prefetch,
                dependent=dependent,
            )
        )

    def l2_access(core: int, line: int) -> None:
        """Demand L2 access for a line missing in the core's L1.

        The L1 is write-allocate/writeback, so even a write miss fetches
        the line; the L2 copy stays clean until an L1 writeback arrives.
        """
        result = l2.access(line, False)
        if result.writeback is not None:
            emit(core, result.writeback, True, prefetch=False)
        if not result.hit:
            pending_cpu_cycles[core] += config.l2_hit_cpu_cycles
            emit(core, line, False, prefetch=False)
            for pf_line in prefetcher.observe(line):
                if not l2.contains(pf_line):
                    victim = l2.fill(pf_line)
                    if victim is not None:
                        emit(core, victim, True, prefetch=False)
                    emit(core, pf_line, False, prefetch=True)
        else:
            pending_cpu_cycles[core] += config.l2_hit_cpu_cycles

    live = [i for i in range(len(streams)) if len(streams[i])]
    while live:
        still_live = []
        for core in live:
            stream = streams[core]
            start = positions[core]
            stop = min(start + _INTERLEAVE_CHUNK, len(stream))
            l1 = l1s[core]
            for idx in range(start, stop):
                address = int(stream.addresses[idx])
                is_write = bool(stream.is_write[idx])
                cpu_accesses += 1
                pending_cpu_cycles[core] += (
                    (1.0 + stream.insts_per_access)
                    * config.intensity_scale
                    / config.issue_ipc
                )

                result = l1.access(address, is_write)
                line = result.line
                if result.writeback is not None:
                    # Dirty L1 victim lands in the L2 (writeback cache).
                    directory.evict(core, result.writeback)
                    victim = l2.fill(result.writeback, dirty=True)
                    if victim is not None:
                        emit(core, victim, True, prefetch=False)
                if result.hit:
                    if is_write:
                        outcome = directory.write(core, line)
                        for other in outcome.invalidated:
                            l1s[other].invalidate(line)
                    continue

                # L1 miss: coherence first, then the shared L2.
                outcome = (
                    directory.write(core, line)
                    if is_write
                    else directory.read(core, line)
                )
                for other in outcome.invalidated:
                    l1s[other].invalidate(line)
                if outcome.dirty_writeback:
                    victim = l2.fill(line, dirty=True)
                    if victim is not None:
                        emit(core, victim, True, prefetch=False)
                    continue  # cache-to-cache transfer, no DRAM access
                l2_access(core, line)
            positions[core] = stop
            if stop < len(stream):
                still_live.append(core)
        live = still_live

    # Assign line ids and build the payload table.
    addresses = []
    next_id = 0
    for recs in records:
        for rec in recs:
            rec.line_id = next_id
            addresses.append(rec.address)
            next_id += 1
    line_data = (
        data_model.lines_for(np.asarray(addresses, dtype=np.int64))
        if addresses
        else np.zeros((0, 64), dtype=np.uint8)
    )

    l1_accesses = sum(c.hits + c.misses for c in l1s)
    l1_misses = sum(c.misses for c in l1s)
    return MemoryTrace(
        name=name,
        records_by_core=records,
        line_data=line_data,
        cpu_accesses=cpu_accesses,
        l1_miss_rate=l1_misses / l1_accesses if l1_accesses else 0.0,
        l2_miss_rate=l2.miss_rate,
        stats={
            "l2_writebacks": l2.writebacks,
            "prefetches": prefetcher.issued,
            "mesi_invalidations": directory.invalidations,
            "mesi_dirty_transfers": directory.dirty_transfers,
        },
    )

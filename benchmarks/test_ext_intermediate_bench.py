"""Benchmark target: Section 7.5.3 intermediate-code extension study."""

from repro.experiments import ALL_EXPERIMENTS


def test_ext_intermediate(benchmark, show):
    result = benchmark.pedantic(
        ALL_EXPERIMENTS["ext_intermediate"], rounds=1, iterations=1
    )
    show(result)
    assert result.rows, "experiment produced no rows"
    # The intermediate code must win more long slots than the BL16 code.
    assert (
        result.observations["mean_long_share_lwc12"]
        >= result.observations["mean_long_share_mil"]
    )

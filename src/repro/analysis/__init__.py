"""Bus instrumentation and the Figures 4-6 metrics."""

from .charts import bar_chart, grouped_bars
from .metrics import (
    GAP_BUCKETS,
    PendingSplit,
    bucket_label,
    idle_gap_histogram,
    pending_split,
    slack_histogram,
)
from .report import format_normalized_series, format_table
from .telemetry_view import render_metrics, summarize_decisions
from .tracedump import (
    audit_dump,
    dump_transactions_csv,
    dump_transactions_jsonl,
    load_transactions_csv,
    load_transactions_jsonl,
)

__all__ = [
    "bar_chart",
    "grouped_bars",
    "audit_dump",
    "dump_transactions_csv",
    "dump_transactions_jsonl",
    "load_transactions_csv",
    "load_transactions_jsonl",
    "GAP_BUCKETS",
    "PendingSplit",
    "bucket_label",
    "idle_gap_histogram",
    "pending_split",
    "slack_histogram",
    "format_normalized_series",
    "format_table",
    "render_metrics",
    "summarize_decisions",
]

"""Fixed-seed schedule fuzzer: drive the real controller, audit the log.

The fuzzer generates adversarial request streams — random rank/group/
bank/row mixes, read/write interleavings, bursty arrivals, and
occasional multi-tREFI idle gaps that exercise refresh catch-up — runs
them through a full :class:`~repro.controller.ChannelController`, and
replays the recorded command and bus logs through
:class:`~repro.audit.protocol.ProtocolAuditor`.  A clean audit over the
corpus is the evidence that the channel's constraint enforcement and the
auditor's independent re-derivation agree.

Everything is seeded: ``run_corpus(schedules=..., base_seed=...)``
enumerates a deterministic grid of (timing set × burst-length set ×
rank count × page policy) combinations, so a failure reproduces from its
printed seed alone.  The grid covers DDR4-3200, LPDDR3-1600 and
DDR3-1600 with BL8 / BL10 / BL16 bursts (and a mixed-scheme policy that
changes burst length per transaction, the regime MiL actually operates
in) over one- and two-rank channels.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from ..coding.registry import scheme_info
from ..controller.controller import ChannelController
from ..controller.request import MemoryRequest
from ..dram.address import MappedAddress
from ..dram.commands import DDR4_GEOMETRY, LPDDR3_GEOMETRY, Geometry
from ..dram.timing import DDR3_1600, DDR4_3200, LPDDR3_1600, TimingParams
from .protocol import ProtocolAuditor, Violation

__all__ = ["FuzzResult", "ShuffledScheme", "drive", "fuzz_controller",
           "fuzz_schedule", "run_corpus", "combo_grid"]

# DDR3 has no bank groups; mirror the LPDDR3 organisation at DDR4's
# page size for the cross-generation fuzz arm.
DDR3_FUZZ_GEOMETRY = Geometry(
    ranks=2, bank_groups=1, banks_per_group=8, rows=1 << 15, row_bytes=8192
)

_TIMINGS: dict[str, tuple[TimingParams, Geometry]] = {
    "ddr4-3200": (DDR4_3200, DDR4_GEOMETRY),
    "lpddr3-1600": (LPDDR3_1600, LPDDR3_GEOMETRY),
    "ddr3-1600": (DDR3_1600, DDR3_FUZZ_GEOMETRY),
}

# Burst-length arms: fixed BL8/BL10/BL16, plus the per-transaction mix.
_SCHEME_SETS: dict[str, tuple[str, ...]] = {
    "bl8": ("dbi",),
    "bl10": ("milc",),
    "bl16": ("3lwc",),
    "mix": ("dbi", "milc", "3lwc"),
}


class ShuffledScheme:
    """Coding policy that picks a random burst length per transaction.

    The worst case for tCCD stretch and bus accounting: every column
    command may change the burst length.  ``extra_cl`` is the maximum
    over the allowed schemes so the folded codec latency is always
    sufficient (the same conservative choice MiL's own policy makes).
    """

    probe = None  # telemetry slot, unused here

    def __init__(self, schemes: tuple[str, ...], seed: int):
        self.schemes = tuple(schemes)
        self.extra_cl = max(
            scheme_info(s).extra_latency for s in self.schemes
        )
        self._rng = random.Random(seed)

    def choose(self, controller, request, now: int) -> str:
        return self._rng.choice(self.schemes)

    @property
    def max_bus_cycles(self) -> int:
        return max(scheme_info(s).bus_cycles for s in self.schemes)


@dataclass(frozen=True)
class FuzzResult:
    """Outcome of one fuzzed schedule."""

    label: str  # "ddr4-3200/mix/r2/open"
    seed: int
    requests: int
    completed: int
    commands: int
    violations: list[Violation]

    @property
    def clean(self) -> bool:
        return not self.violations


def _random_arrivals(
    rng: random.Random, geometry: Geometry, timing: TimingParams, count: int
) -> list[tuple[int, MemoryRequest]]:
    """Adversarial (cycle, request) stream for one schedule."""
    arrivals = []
    now = 0
    # A small row pool makes hits and conflicts both common.
    rows = [rng.randrange(geometry.rows) for _ in range(4)]
    for i in range(count):
        if rng.random() < 0.05:
            # Long idle gap: multiple refresh intervals elapse, driving
            # the debt clamp and the refresh catch-up path.
            now += timing.REFI * rng.randint(1, 12)
        else:
            now += rng.randrange(0, 30)
        mapped = MappedAddress(
            channel=0,
            rank=rng.randrange(geometry.ranks),
            bank_group=rng.randrange(geometry.bank_groups),
            bank=rng.randrange(geometry.banks_per_group),
            row=rng.choice(rows),
            column=rng.randrange(geometry.lines_per_row),
        )
        req = MemoryRequest(
            address=i * 64,
            is_write=rng.random() < 0.4,
            core=i % 4,
            line_id=i,
            mapped=mapped,
        )
        arrivals.append((now, req))
    return arrivals


def drive(
    mc: ChannelController,
    arrivals: list[tuple[int, MemoryRequest]],
    max_cycles: int = 4_000_000,
) -> list[MemoryRequest]:
    """Feed (cycle, request) arrivals; run to empty; return completions."""
    done: list[MemoryRequest] = []
    idx = 0
    now = 0
    while idx < len(arrivals) or mc.has_pending:
        while idx < len(arrivals) and arrivals[idx][0] <= now:
            cycle, req = arrivals[idx]
            if mc.can_accept(req.is_write):
                mc.enqueue(req, now)
                idx += 1
            else:
                break
        mc.step(now)
        done.extend(mc.drain_completions())
        bounds = [t for t in (
            mc.next_event(now),
            arrivals[idx][0] if idx < len(arrivals) else None,
        ) if t is not None]
        if not bounds:
            if idx < len(arrivals):
                now += 1
                continue
            break
        now = max(now + 1, min(bounds))
        if now >= max_cycles:
            raise RuntimeError("fuzz schedule made no progress")
    done.extend(mc.drain_completions())
    return done


def fuzz_controller(
    timing: TimingParams,
    geometry: Geometry,
    schemes: tuple[str, ...],
    requests: int,
    seed: int,
    page_policy: str = "open",
) -> tuple[ChannelController, list[MemoryRequest]]:
    """Drive one fuzzed schedule; return the controller and completions.

    The controller keeps its command log, so callers can audit it or
    inspect it (the injected-violation tests mutate these logs).
    """
    rng = random.Random(seed)
    policy = ShuffledScheme(schemes, seed=rng.randrange(1 << 30))
    mc = ChannelController(
        timing, geometry, policy=policy, page_policy=page_policy,
        keep_cmd_log=True,
    )
    arrivals = _random_arrivals(rng, geometry, timing, requests)
    done = drive(mc, arrivals)
    return mc, done


def fuzz_schedule(
    timing: TimingParams,
    geometry: Geometry,
    schemes: tuple[str, ...],
    requests: int,
    seed: int,
    page_policy: str = "open",
    label: str = "",
) -> FuzzResult:
    """Run one fuzzed schedule through controller and auditor."""
    mc, done = fuzz_controller(
        timing, geometry, schemes, requests, seed, page_policy
    )
    auditor = ProtocolAuditor(mc.timing, geometry)
    violations = auditor.audit(mc.channel.command_log,
                               mc.channel.transactions)
    return FuzzResult(
        label=label or f"{timing.name}/{'+'.join(schemes)}",
        seed=seed,
        requests=requests,
        completed=len(done),
        commands=len(mc.channel.command_log),
        violations=violations,
    )


def combo_grid() -> list[tuple[str, TimingParams, Geometry, tuple[str, ...], str]]:
    """The deterministic (timing × schemes × ranks × policy) grid."""
    grid = []
    for tname, (timing, geometry) in _TIMINGS.items():
        for sname, schemes in _SCHEME_SETS.items():
            for ranks in (1, 2):
                for page in ("open", "closed"):
                    geo = (
                        geometry if ranks == geometry.ranks
                        else replace(geometry, ranks=ranks)
                    )
                    label = f"{tname}/{sname}/r{ranks}/{page}"
                    grid.append((label, timing, geo, schemes, page))
    return grid


def run_corpus(
    schedules: int,
    requests: int = 24,
    base_seed: int = 0,
):
    """Yield ``schedules`` FuzzResults, round-robin over the grid.

    Deterministic in (``schedules``, ``requests``, ``base_seed``): the
    i-th schedule always gets combo ``grid[i % len(grid)]`` and seed
    ``base_seed * 1_000_003 + i``.
    """
    grid = combo_grid()
    for i in range(schedules):
        label, timing, geometry, schemes, page = grid[i % len(grid)]
        yield fuzz_schedule(
            timing, geometry, schemes, requests,
            seed=base_seed * 1_000_003 + i,
            page_policy=page, label=label,
        )

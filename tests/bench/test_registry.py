"""Registry semantics: registration, lookup, selection, collection."""

import pytest

from repro.bench import registry
from repro.bench.registry import BenchError, BenchmarkDef, benchmark


@pytest.fixture
def scratch_registry(monkeypatch):
    """An empty registry so tests cannot pollute the real suite."""
    fresh: dict = {}
    monkeypatch.setattr(registry, "REGISTRY", fresh)
    monkeypatch.setattr(registry, "_collected", True)
    return fresh


class TestRegistration:
    def test_decorator_registers_and_returns_factory(self, scratch_registry):
        @benchmark("t.one", params={"n": 3}, smoke=True, inner_ops=3,
                   description="demo")
        def factory():
            return lambda: 42

        assert set(scratch_registry) == {"t.one"}
        defn = scratch_registry["t.one"]
        assert defn.params == {"n": 3}
        assert defn.smoke and defn.inner_ops == 3
        assert defn.build()() == 42

    def test_duplicate_name_rejected(self, scratch_registry):
        @benchmark("t.dup")
        def first():
            return lambda: None

        with pytest.raises(BenchError, match="duplicate"):
            @benchmark("t.dup")
            def second():
                return lambda: None

    def test_inner_ops_must_be_positive(self, scratch_registry):
        with pytest.raises(BenchError, match="inner_ops"):
            benchmark("t.bad", inner_ops=0)

    def test_factory_must_return_callable(self, scratch_registry):
        @benchmark("t.notathunk")
        def factory():
            return 7

        with pytest.raises(BenchError, match="not a callable"):
            scratch_registry["t.notathunk"].build()

    def test_description_falls_back_to_docstring(self, scratch_registry):
        @benchmark("t.doc")
        def factory():
            """From the docstring."""
            return lambda: None

        assert scratch_registry["t.doc"].description == "From the docstring."


class TestSelection:
    @pytest.fixture(autouse=True)
    def few(self, scratch_registry):
        for name, smoke in [("a.x", True), ("a.y", False), ("b.x", True)]:
            registry.REGISTRY[name] = BenchmarkDef(
                name=name, factory=lambda: (lambda: None), smoke=smoke
            )

    def test_substring(self):
        assert [d.name for d in registry.select("a.")] == ["a.x", "a.y"]

    def test_glob(self):
        assert [d.name for d in registry.select("*.x")] == ["a.x", "b.x"]

    def test_smoke_only(self):
        assert [d.name for d in registry.select(smoke_only=True)] == [
            "a.x", "b.x"
        ]

    def test_no_pattern_returns_all(self):
        assert len(registry.select()) == 3

    def test_get_unknown_raises(self):
        with pytest.raises(BenchError, match="unknown benchmark"):
            registry.get("nope")


class TestRealSuite:
    def test_collect_is_idempotent_and_nonempty(self):
        first = registry.collect()
        second = registry.collect()
        assert first is second
        assert len(first) >= 15

    def test_suite_has_a_smoke_subset(self):
        smoke = registry.select(smoke_only=True)
        assert len(smoke) >= 8
        # The CI gate depends on these specific members.
        names = {d.name for d in smoke}
        assert {"coding.bitops.popcount", "coding.line_zeros.milc",
                "campaign.cache_key"} <= names

    def test_every_definition_is_well_formed(self):
        for defn in registry.collect().values():
            assert defn.name and defn.inner_ops >= 1
            assert isinstance(defn.params, dict)

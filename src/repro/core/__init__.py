"""The MiL framework: decision logic, policies, and end-to-end runs."""

from .config import MiLConfig
from .decision import MiLCOnlyPolicy, MiLPolicy
from .framework import (
    RunSummary,
    energy_params_for,
    make_policy_factory,
    run,
    system_energy_params_for,
)
from .policies import (
    PolicyContext,
    PolicyInfo,
    get_policy,
    known_policy,
    policy_names,
    policy_table,
    register_policy,
    unregister_policy,
)

__all__ = [
    "MiLConfig",
    "MiLCOnlyPolicy",
    "MiLPolicy",
    "POLICIES",
    "PolicyContext",
    "PolicyInfo",
    "RunSummary",
    "energy_params_for",
    "get_policy",
    "known_policy",
    "make_policy_factory",
    "policy_names",
    "policy_table",
    "register_policy",
    "run",
    "system_energy_params_for",
    "unregister_policy",
]


def __getattr__(name: str):
    # Live view: policies registered after import stay visible.
    if name == "POLICIES":
        return policy_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

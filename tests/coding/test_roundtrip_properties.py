"""Property-based round-trip and zero-guarantee tests (hypothesis).

Every code the simulator charges energy for must satisfy
``decode(encode(x)) == x`` for *arbitrary* payloads, and the limited-
weight codes must honour their worst-case zero guarantees — those bounds
are what the MiL scheduling maths in Section 4 leans on.  The example
tests elsewhere pin exact codewords; these sweep the input space.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import (
    BusInvertCode,
    CAFOCode,
    DBICode,
    MiLCCode,
    OptimalStaticLWC,
    ThreeLWC,
    TransitionSignaling,
    codeword_zero_levels,
)
from repro.coding.bitops import bytes_to_bits, zeros_in_bits

MAX_EXAMPLES = 50

byte_seqs = st.lists(st.integers(0, 255), min_size=1, max_size=64)


def _bits(byte_values, block_bits):
    """uint8 byte values -> bit blocks of shape (n, block_bits)."""
    flat = bytes_to_bits(np.asarray(byte_values, dtype=np.uint8))
    return flat.reshape(-1, block_bits)


class TestDBI:
    @given(byte_seqs)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_round_trip(self, data):
        code = DBICode()
        bits = _bits(data, 8)
        assert np.array_equal(code.decode(code.encode(bits)), bits)

    @given(byte_seqs)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_at_most_four_zeros_per_codeword(self, data):
        code = DBICode()
        bits = _bits(data, 8)
        coded_zeros = zeros_in_bits(code.encode(bits))
        raw_zeros = 8 - bits.sum(axis=-1)
        assert (coded_zeros <= 4).all()
        assert (coded_zeros <= raw_zeros).all()

    @given(byte_seqs)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_count_zeros_agrees_with_real_encoding(self, data):
        code = DBICode()
        bits = _bits(data, 8)
        assert np.array_equal(
            code.count_zeros(bits), zeros_in_bits(code.encode(bits))
        )


class TestThreeLWC:
    @given(byte_seqs)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_round_trip(self, data):
        code = ThreeLWC()
        bits = _bits(data, 8)
        assert np.array_equal(code.decode(code.encode(bits)), bits)

    @given(byte_seqs)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_at_most_three_zeros_per_codeword(self, data):
        code = ThreeLWC()
        bits = _bits(data, 8)
        assert (zeros_in_bits(code.encode(bits)) <= 3).all()

    @given(byte_seqs)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_count_zeros_agrees_with_real_encoding(self, data):
        code = ThreeLWC()
        bits = _bits(data, 8)
        assert np.array_equal(
            code.count_zeros(bits), zeros_in_bits(code.encode(bits))
        )


class TestMiLC:
    # MiLC blocks are 64 bits = 8 bytes; generate whole blocks.
    blocks = st.lists(st.integers(0, 255), min_size=8, max_size=64).map(
        lambda xs: xs[: len(xs) - len(xs) % 8]
    )

    @given(blocks)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_round_trip(self, data):
        code = MiLCCode()
        bits = _bits(data, 64)
        assert np.array_equal(code.decode(code.encode(bits)), bits)

    @given(blocks)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_never_worse_than_uncoded(self, data):
        # The original-rows candidate is always available, so encoding
        # can cost at most the 16 mode bits' worth of extra zeros.
        code = MiLCCode()
        bits = _bits(data, 64)
        coded_zeros = zeros_in_bits(code.encode(bits))
        raw_zeros = 64 - bits.sum(axis=-1)
        assert (coded_zeros <= raw_zeros + 16).all()

    @given(blocks)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_count_zeros_agrees_with_real_encoding(self, data):
        code = MiLCCode()
        bits = _bits(data, 64)
        assert np.array_equal(
            code.count_zeros(bits), zeros_in_bits(code.encode(bits))
        )


class TestCAFO:
    # CAFO blocks are 64 bits = 8 bytes, arranged as an 8x8 square.
    blocks = st.lists(st.integers(0, 255), min_size=8, max_size=64).map(
        lambda xs: xs[: len(xs) - len(xs) % 8]
    )
    variants = st.sampled_from([2, 4, None])

    @given(blocks, variants)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_round_trip(self, data, iterations):
        code = CAFOCode(iterations=iterations)
        bits = _bits(data, 64)
        assert np.array_equal(code.decode(code.encode(bits)), bits)

    @given(blocks, variants)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_never_worse_than_uncoded(self, data, iterations):
        # With no flips the codeword costs exactly the raw zeros (all
        # sixteen flag wires transmit 1), and each pass only accepts
        # flips that strictly lower the cost — so CAFO can never lose.
        code = CAFOCode(iterations=iterations)
        bits = _bits(data, 64)
        coded_zeros = zeros_in_bits(code.encode(bits))
        raw_zeros = 64 - bits.sum(axis=-1)
        assert (coded_zeros <= raw_zeros).all()

    @given(blocks, variants)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_count_zeros_agrees_with_real_encoding(self, data, iterations):
        code = CAFOCode(iterations=iterations)
        bits = _bits(data, 64)
        assert np.array_equal(
            code.count_zeros(bits), zeros_in_bits(code.encode(bits))
        )

    @given(blocks)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_more_iterations_never_hurt(self, data):
        # Each accepted half-pass strictly improves the objective, so
        # CAFO4 dominates CAFO2 and convergent CAFO dominates both.
        bits = _bits(data, 64)
        z2 = CAFOCode(iterations=2).count_zeros(bits)
        z4 = CAFOCode(iterations=4).count_zeros(bits)
        z_conv = CAFOCode(iterations=None).count_zeros(bits)
        assert (z4 <= z2).all()
        assert (z_conv <= z4).all()


class TestOptimalStaticLWC:
    widths = st.sampled_from([9, 10, 12, 17])

    @given(byte_seqs, widths)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_round_trip(self, data, n_bits):
        code = OptimalStaticLWC(n_bits)
        bits = _bits(data, 8)
        assert np.array_equal(code.decode(code.encode(bits)), bits)

    @given(byte_seqs, widths)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_weight_bound(self, data, n_bits):
        # No codeword is worse than the rarest byte's assignment: the
        # 256th codeword in ascending-zero order bounds every zero count.
        code = OptimalStaticLWC(n_bits)
        bits = _bits(data, 8)
        worst = int(codeword_zero_levels(n_bits).max())
        assert (zeros_in_bits(code.encode(bits)) <= worst).all()

    @given(byte_seqs, widths)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_count_zeros_agrees_with_real_encoding(self, data, n_bits):
        code = OptimalStaticLWC(n_bits)
        bits = _bits(data, 8)
        assert np.array_equal(
            code.count_zeros(bits), zeros_in_bits(code.encode(bits))
        )

    @given(byte_seqs)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_frequency_fitting_never_increases_expected_cost(self, data):
        # Fitting the code to the corpus it encodes can only help
        # relative to the uniform assignment, per-corpus in aggregate.
        from repro.coding import byte_frequencies

        corpus = np.asarray(data, dtype=np.uint8)
        fitted = OptimalStaticLWC(9, byte_frequencies(corpus))
        uniform = OptimalStaticLWC(9)
        bits = _bits(data, 8)
        assert fitted.count_zeros(bits).sum() <= uniform.count_zeros(bits).sum()


class TestBusInvert:
    @given(byte_seqs)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_sequence_round_trip(self, data):
        code = BusInvertCode()
        beats = np.asarray(data, dtype=np.uint8)
        codes, _ = code.encode_sequence(beats)
        decoded = code.decode_sequence(codes)
        assert np.array_equal(decoded, bytes_to_bits(beats).reshape(-1, 8))

    @given(byte_seqs)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_at_most_four_transitions_per_beat(self, data):
        # flips(original) + flips(inverted) = 9 over the 9 wires, so the
        # cheaper choice can never exceed four transitions.
        code = BusInvertCode()
        _, transitions = code.encode_sequence(
            np.asarray(data, dtype=np.uint8))
        assert (transitions <= 4).all()


class TestTransitionSignaling:
    @given(byte_seqs, st.sampled_from([0, 1]))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_round_trip(self, data, flip_on):
        ts = TransitionSignaling(lanes=8, flip_on=flip_on)
        bits = bytes_to_bits(np.asarray(data, dtype=np.uint8)).reshape(-1, 8)
        start = ts.wire_state
        levels = ts.encode(bits)
        assert np.array_equal(ts.decode(levels, prev_wire=start), bits)

    @given(byte_seqs)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_flips_equal_zeros_with_paper_polarity(self, data):
        # Section 2.1.2: with flip-on-0 polarity, wire flips == logical
        # zeros, so zero-minimising codes minimise LPDDR3 flip energy.
        ts = TransitionSignaling(lanes=8, flip_on=0)
        bits = bytes_to_bits(np.asarray(data, dtype=np.uint8)).reshape(-1, 8)
        zeros = int((bits == 0).sum())
        assert ts.count_flips(bits) == zeros
        levels = ts.encode(bits)
        prev = np.zeros(8, dtype=np.uint8)
        flips = int((np.vstack([prev[None, :], levels[:-1]]) != levels).sum())
        assert flips == zeros

"""Benchmark target: Figure 19 system energy.

Regenerates the paper's fig19 rows (see DESIGN.md experiment index).
pytest-benchmark reports the wall time of the (cached) experiment; the
printed table is the reproduced result.
"""

from repro.experiments.fig19_system_energy import run_experiment


def test_fig19(benchmark, show):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(result)
    assert result.rows, "experiment produced no rows"

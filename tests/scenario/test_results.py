"""Result rows: schema, determinism, JSONL serialisation."""

import json

from repro.core.framework import run_spec
from repro.scenario import (
    RESULT_SCHEMA,
    compile_scenario,
    parse_scenario,
    render_rows,
    result_row,
    run_scenario,
    scenario_digest,
    write_rows,
)

TINY = {
    "schema": "repro.scenario/v1",
    "name": "SYN-ROWS",
    "seed": 0,
    "accesses_per_core": 80,
    "arrival": {"kind": "poisson", "mean_gap": 30},
    "mix": {"GUPS": 0.5, "CG": 0.5},
}


def test_row_shape_and_determinism():
    scn = parse_scenario(TINY)
    (spec,) = compile_scenario(scn)
    summary = run_spec(spec)
    row = result_row(scn, spec, summary, fingerprint="feedface",
                     rev="abc1234", ts=0.0)
    assert row["schema"] == RESULT_SCHEMA
    assert row["scenario"] == "SYN-ROWS"
    assert row["scenario_digest"] == scenario_digest(scn)
    assert row["git_rev"] == "abc1234"
    assert row["spec"] == spec.canonical()
    assert row["summary"]["cycles"] == summary.cycles
    assert row["summary"]["dram_energy_j"] > 0
    assert set(row["timing"]) == {"ts", "wall_s", "cache_hit"}
    # Pinned fingerprint/rev/ts makes the whole row a pure function.
    again = result_row(scn, spec, summary, fingerprint="feedface",
                       rev="abc1234", ts=0.0)
    assert json.dumps(row, sort_keys=True) == json.dumps(
        again, sort_keys=True
    )


def test_render_and_write_rows(tmp_path):
    rows = [{"b": 2, "a": 1}, {"a": 3}]
    text = render_rows(rows)
    assert text == '{"a": 1, "b": 2}\n{"a": 3}\n'
    out = tmp_path / "deep" / "rows.jsonl"
    assert write_rows(out, rows) == out
    assert out.read_text() == text


def test_run_scenario_builds_rows_in_compile_order(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    scn = parse_scenario(dict(TINY, grid={"policy": ["dbi", "mil"]}))
    result = run_scenario(scn)
    assert result.ok
    assert result.counters["specs"] == 2
    assert [r["spec"]["policy"] for r in result.rows] == ["dbi", "mil"]
    assert all(r["timing"]["cache_hit"] is False for r in result.rows)
    # Second execution: identical rows modulo timing, all cache hits.
    second = run_scenario(scn)
    strip = lambda rows: [
        json.dumps({k: v for k, v in r.items() if k != "timing"},
                   sort_keys=True)
        for r in rows
    ]
    assert strip(second.rows) == strip(result.rows)
    assert all(r["timing"]["cache_hit"] is True for r in second.rows)

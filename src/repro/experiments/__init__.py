"""One module per table/figure of the paper's evaluation.

Each module exposes ``run_experiment(accesses_per_core=...)`` returning
an :class:`~repro.experiments.base.ExperimentResult`; running a module
as a script prints the reproduced rows next to the paper's claim.
``ALL_EXPERIMENTS`` maps experiment ids to those callables so the
benchmark harness and EXPERIMENTS.md generation can iterate them.
"""

from . import (
    ext_design_space,
    ext_lpddr3_sensitivity,
    validation,
    ext_intermediate_code,
    ext_powerdown,
    ext_x4_width,
    fig01_power_breakdown,
    fig02_always_lwc,
    fig04_idle_gaps,
    fig05_pending,
    fig06_slack,
    fig07_optimal_lwc,
    fig16_performance,
    fig17_zeroes,
    fig18_energy_breakdown,
    fig19_system_energy,
    fig20_burst_length,
    fig21_lookahead,
    fig22_scheme_mix,
    table4_codec_cost,
)
from .base import ExperimentResult
from .runner import (
    CACHE_VERSION,
    EXPERIMENT_ACCESSES_PER_CORE,
    cache_dir,
    cached_run,
)

ALL_EXPERIMENTS = {
    "fig01": fig01_power_breakdown.run_experiment,
    "fig02": fig02_always_lwc.run_experiment,
    "fig04": fig04_idle_gaps.run_experiment,
    "fig05": fig05_pending.run_experiment,
    "fig06": fig06_slack.run_experiment,
    "fig07": fig07_optimal_lwc.run_experiment,
    "table4": table4_codec_cost.run_experiment,
    "fig16": fig16_performance.run_experiment,
    "fig17": fig17_zeroes.run_experiment,
    "fig18": fig18_energy_breakdown.run_experiment,
    "fig19": fig19_system_energy.run_experiment,
    "fig20": fig20_burst_length.run_experiment,
    "fig21": fig21_lookahead.run_experiment,
    "fig22": fig22_scheme_mix.run_experiment,
    # Extension studies (paper Sections 4.1, 7.3, and 7.5.2 directions).
    "ext_x4": ext_x4_width.run_experiment,
    "ext_powerdown": ext_powerdown.run_experiment,
    "ext_design_space": ext_design_space.run_experiment,
    "ext_intermediate": ext_intermediate_code.run_experiment,
    "validation": validation.run_experiment,
    "ext_lpddr3": ext_lpddr3_sensitivity.run_experiment,
}

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "CACHE_VERSION",
    "EXPERIMENT_ACCESSES_PER_CORE",
    "cache_dir",
    "cached_run",
]

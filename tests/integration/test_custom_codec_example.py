"""examples/custom_codec.py completes a real run — in its own process.

The example registers a new scheme (``lwc14``) and policy
(``mil-lwc14``) at program level and drives the stock CLI; running it
in a subprocess keeps those registrations out of this test session's
registries, and proves the one-file extension story works from a cold
interpreter (registration order, CLI choices, RunSpec validation,
energy accounting — the whole path).
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
EXAMPLE = REPO_ROOT / "examples" / "custom_codec.py"


def test_example_runs_end_to_end():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, str(EXAMPLE), "--fast"],
        capture_output=True, text=True, timeout=600, env=env,
        cwd=str(REPO_ROOT),
    )
    assert proc.returncode == 0, proc.stderr
    out = proc.stdout
    # The run must actually grant the new long code some bursts and
    # model its energy (an unknown scheme would have raised instead).
    assert "mil-lwc14" in out
    assert "lwc14" in out
    assert "DRAM energy" in out
    assert "vs DBI" in out


def test_registrations_do_not_leak_into_this_session():
    from repro.coding.registry import scheme_names
    from repro.core.policies import policy_names

    assert "lwc14" not in scheme_names()
    assert "mil-lwc14" not in policy_names()

"""Tests for the cache-hierarchy trace filter."""

import numpy as np
import pytest

from repro.system import NIAGARA_SERVER, CoreAccessStream, filter_through_hierarchy
from repro.workloads import DataModel


def model():
    return DataModel({"random": 1.0})


def stream(addresses, writes=None, ipa=4.0, **kwargs):
    addresses = np.asarray(addresses, dtype=np.int64)
    if writes is None:
        writes = np.zeros(len(addresses), dtype=bool)
    return CoreAccessStream(addresses, np.asarray(writes), ipa, **kwargs)


class TestFiltering:
    def test_repeated_line_yields_single_miss(self):
        s = stream([0, 8, 16, 24, 0, 8])
        trace = filter_through_hierarchy([s], NIAGARA_SERVER, model())
        demand = [
            r for r in trace.records_by_core[0]
            if not r.is_write and not r.is_prefetch
        ]
        assert len(demand) == 1
        assert demand[0].address == 0

    def test_distinct_lines_all_miss(self):
        # 64-line strides defeat both the caches and the prefetcher's
        # stream-match window, so every access reaches memory.
        s = stream([i * 4096 for i in range(300)])
        trace = filter_through_hierarchy([s], NIAGARA_SERVER, model())
        assert trace.demand_reads == 300

    def test_gap_reflects_arithmetic_intensity(self):
        # The L2 lookup latency adds a fixed floor to every gap, so the
        # ratio is attenuated relative to the raw intensity ratio.
        heavy = stream([i * 4096 for i in range(50)], ipa=60.0)
        light = stream([i * 4096 for i in range(50)], ipa=2.0)
        t_heavy = filter_through_hierarchy([heavy], NIAGARA_SERVER, model())
        t_light = filter_through_hierarchy([light], NIAGARA_SERVER, model())
        g_heavy = np.mean([r.gap for r in t_heavy.records_by_core[0]])
        g_light = np.mean([r.gap for r in t_light.records_by_core[0]])
        assert g_heavy > 1.8 * g_light

    def test_line_ids_index_line_data(self):
        s = stream([i * 4096 for i in range(20)])
        trace = filter_through_hierarchy([s], NIAGARA_SERVER, model())
        ids = [r.line_id for recs in trace.records_by_core for r in recs]
        assert ids == list(range(trace.total_records))
        assert trace.line_data.shape == (trace.total_records, 64)

    def test_line_data_matches_data_model(self):
        s = stream([i * 4096 for i in range(10)])
        dm = model()
        trace = filter_through_hierarchy([s], NIAGARA_SERVER, dm)
        for rec in trace.records_by_core[0]:
            expect = dm.lines_for(np.array([rec.address]))[0]
            assert (trace.line_data[rec.line_id] == expect).all()


class TestWritebacks:
    def test_dirty_working_set_produces_memory_writes(self):
        # Write-stream a region several times the L2: dirty lines must
        # eventually be written back to memory.
        n = NIAGARA_SERVER.l2_bytes * 3 // 64
        addrs = np.arange(n, dtype=np.int64) * 64
        s = stream(addrs, writes=np.ones(n, dtype=bool))
        trace = filter_through_hierarchy([s], NIAGARA_SERVER, model())
        assert trace.writes > n // 4

    def test_clean_streaming_produces_no_writes(self):
        n = 4000
        s = stream(np.arange(n, dtype=np.int64) * 64)
        trace = filter_through_hierarchy([s], NIAGARA_SERVER, model())
        assert trace.writes == 0


class TestCoherenceIntegration:
    def test_shared_line_write_invalidates_other_l1(self):
        a = stream([0, 0], writes=[False, False])
        b = stream([0, 64 * 4096], writes=[True, False])
        trace = filter_through_hierarchy([a, b], NIAGARA_SERVER, model())
        assert trace.stats["mesi_invalidations"] >= 1

    def test_cache_to_cache_transfer_avoids_dram(self):
        # Core 1 reads a line core 0 dirtied: supplied M->S, no DRAM read.
        a = stream([0], writes=[True])
        b = stream([0], writes=[False])
        trace = filter_through_hierarchy([a, b], NIAGARA_SERVER, model())
        assert trace.stats["mesi_dirty_transfers"] >= 1


class TestPrefetchIntegration:
    def test_sequential_stream_generates_prefetch_records(self):
        s = stream(np.arange(3000, dtype=np.int64) * 64)
        trace = filter_through_hierarchy([s], NIAGARA_SERVER, model())
        assert trace.prefetches > 0
        # Prefetch pacing: no prefetch record with a zero gap burst.
        pf_gaps = [
            r.gap for r in trace.records_by_core[0] if r.is_prefetch
        ]
        assert min(pf_gaps) >= NIAGARA_SERVER.prefetcher.spacing

    def test_prefetches_reduce_demand_misses(self):
        s1 = stream(np.arange(3000, dtype=np.int64) * 64)
        with_pf = filter_through_hierarchy([s1], NIAGARA_SERVER, model())
        # Demand misses + prefetches together cover the stream.
        total_lines = 3000 // (64 // 64)
        assert with_pf.demand_reads < total_lines
        assert with_pf.demand_reads + with_pf.prefetches >= total_lines * 0.9


class TestValidation:
    def test_stream_validation(self):
        with pytest.raises(ValueError):
            CoreAccessStream(np.zeros(3), np.zeros(2, dtype=bool), 1.0)
        with pytest.raises(ValueError):
            CoreAccessStream(np.zeros(2), np.zeros(2, dtype=bool), -1.0)
        with pytest.raises(ValueError):
            CoreAccessStream(np.zeros(2), np.zeros(2, dtype=bool), 1.0,
                             dependent_fraction=1.5)
        with pytest.raises(ValueError):
            CoreAccessStream(np.zeros(2), np.zeros(2, dtype=bool), 1.0,
                             burst_lines=0)

    def test_too_many_streams_rejected(self):
        streams = [stream([0]) for _ in range(NIAGARA_SERVER.cores + 1)]
        with pytest.raises(ValueError):
            filter_through_hierarchy(streams, NIAGARA_SERVER, model())

    def test_burstiness_banks_gaps(self):
        addrs = np.arange(0, 40, dtype=np.int64) * 4096
        bursty = stream(addrs, ipa=20.0, burst_lines=4)
        trace = filter_through_hierarchy([bursty], NIAGARA_SERVER, model())
        demand_gaps = [
            r.gap for r in trace.records_by_core[0]
            if not r.is_prefetch and not r.is_write
        ]
        zeros = sum(1 for g in demand_gaps if g == 0)
        assert zeros >= len(demand_gaps) // 2  # most gaps deferred

"""Extension study: address interleaving and row-buffer page policy.

The paper fixes the memory controller at Table 2's design point
(page-interleaved mapping, open-page policy) and notes that a
coding-aware controller is future work.  This study sweeps the two
classic controller knobs around that point and measures how MiL's
opportunity changes:

* **line interleaving** spreads consecutive lines across banks,
  trading row-buffer hits for bank parallelism — fewer ready row hits
  in the look-ahead window means *more* long-code slots, but also more
  activates;
* **closed-page policy** auto-precharges after the last queued hit,
  shortening conflict latency for random traffic but abandoning open
  rows that streams would have re-hit.

Each design point reports the DBI baseline's row behaviour and MiL's
performance/zero trade on one streaming and one random benchmark.
"""

from __future__ import annotations

from ..campaign import RunSpec
from ..system.machine import NIAGARA_SERVER
from .base import ExperimentResult
from .runner import EXPERIMENT_ACCESSES_PER_CORE, gather

__all__ = ["run_experiment", "plan", "DESIGN_POINTS"]

DESIGN_POINTS = (
    ("page+open", "page", "open"),  # the paper's Table 2 point
    ("line+open", "line", "open"),
    ("page+closed", "page", "closed"),
)

BENCHES = ("SWIM", "GUPS")


def _spec(label, interleave, page_policy, bench, policy, accesses_per_core):
    # A design point is the Table 2 server plus field overrides — pure
    # data, so the spec stays hashable and content-addressable.
    return RunSpec(
        benchmark=bench,
        system=NIAGARA_SERVER.name,
        policy=policy,
        accesses_per_core=accesses_per_core,
        system_overrides=(
            ("name", f"{NIAGARA_SERVER.name}[{label}]"),
            ("address_interleave", interleave),
            ("page_policy", page_policy),
        ),
    )


def plan(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> list[RunSpec]:
    return [
        _spec(label, interleave, page_policy, bench, policy,
              accesses_per_core)
        for label, interleave, page_policy in DESIGN_POINTS
        for bench in BENCHES
        for policy in ("dbi", "mil")
    ]


def run_experiment(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> ExperimentResult:
    runs = gather(plan(accesses_per_core))
    rows = []
    for label, interleave, page_policy in DESIGN_POINTS:
        for bench in BENCHES:
            base, mil = (
                runs[_spec(label, interleave, page_policy, bench, policy,
                           accesses_per_core)]
                for policy in ("dbi", "mil")
            )
            counts = mil.scheme_counts
            total = sum(counts.values()) or 1
            rows.append([
                label,
                bench,
                mil.cycles / base.cycles,
                mil.total_zeros / max(1, base.total_zeros),
                counts.get("3lwc", 0) / total,
                base.bus_utilization,
            ])

    result = ExperimentResult(
        experiment="ext_design_space",
        title=(
            "Extension: MiL across controller design points "
            "(DDR4 server; time/zeros vs each point's own DBI baseline)"
        ),
        headers=["design", "benchmark", "mil_time", "mil_zeros",
                 "3lwc_share", "base_util"],
        rows=rows,
        paper_claim=(
            "the paper pins page interleaving + open page (Table 2) and "
            "leaves coding-aware controller design as future work"
        ),
    )
    baseline_rows = [r for r in rows if r[0] == "page+open"]
    result.observations["paper_point_mean_time"] = float(
        sum(r[2] for r in baseline_rows) / len(baseline_rows)
    )
    return result


if __name__ == "__main__":
    print(run_experiment().format())

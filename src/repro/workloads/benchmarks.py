"""The eleven-benchmark suite of Table 3, as synthetic workloads.

Each entry reproduces the two properties of its real counterpart that
MiL's results depend on (see DESIGN.md for the substitution argument):

* the *memory-access behaviour* — footprint vs. the L2, address-stream
  shape, read/write mix, arithmetic intensity, and dependence structure,
  which together set bus utilisation and latency sensitivity; and
* the *data-value statistics* — what the transferred bytes look like,
  which set how much any sparse code can save.

The ``insts_per_access`` knob is each benchmark's arithmetic intensity
(non-memory instructions per memory access); footprints are chosen
relative to the 4 MB/2 MB L2s so the bus-utilisation ordering matches
Figure 5: MM and STRMATCH light; MG, FFT, SCALPARC, SWIM, OCEAN, CG and
GUPS memory-intensive.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..system.machine import SystemConfig
from .datamodel import DataModel
from .generators import (
    gather_stream,
    interleave,
    random_access,
    sequential_stream,
    strided_sweep,
    tile_reuse,
    update_pairs,
)
from .trace import MemoryTrace

__all__ = [
    "BenchmarkSpec",
    "BENCHMARKS",
    "BENCHMARK_ORDER",
    "MEMORY_INTENSIVE",
    "get_benchmark",
    "known_benchmark",
    "validate_benchmark",
    "build_trace",
    "clear_trace_cache",
]

MB = 1 << 20

# Paper's presentation order (Figures 4/5: utilisation low -> high).
BENCHMARK_ORDER = (
    "MM", "STRMATCH", "HISTOGRAM", "ART", "MG", "FFT",
    "SCALPARC", "SWIM", "OCEAN", "CG", "GUPS",
)

MEMORY_INTENSIVE = ("MG", "FFT", "SCALPARC", "SWIM", "OCEAN", "CG", "GUPS")


@dataclass(frozen=True)
class BenchmarkSpec:
    """One Table 3 workload."""

    name: str
    suite: str
    input_desc: str
    insts_per_access: float
    dependent_fraction: float
    data_mix: dict = field(hash=False)
    build: Callable = field(hash=False, compare=False)
    burst_lines: int = 1  # memory-phase burstiness (see CoreAccessStream)
    access_scale: float = 1.0  # trace-size equaliser (heavy-traffic
    # benchmarks touch more lines per access, so they use fewer accesses)

    def _seed_tag(self) -> int:
        # Stable across processes (unlike hash(), which Python salts).
        return zlib.crc32(self.name.encode()) & 0xFFFF

    def data_model(self) -> DataModel:
        return DataModel(self.data_mix, seed=self._seed_tag())

    def streams(
        self, config: SystemConfig, seed: int, accesses_per_core: int
    ) -> list:
        # Imported here: repro.system imports repro.workloads.trace, so a
        # module-level import back into repro.system would be circular.
        from ..system.hierarchy import CoreAccessStream

        streams = []
        for core in range(config.cores):
            rng = np.random.default_rng((seed, core, self._seed_tag()))
            addr, wr = self.build(rng, core, accesses_per_core)
            streams.append(
                CoreAccessStream(
                    addr, wr,
                    insts_per_access=self.insts_per_access,
                    dependent_fraction=self.dependent_fraction,
                    burst_lines=self.burst_lines,
                )
            )
        return streams


PAGE = 8192
N_CORES = 8


def _array_base(index: int) -> int:
    """Base address of shared array ``index``.

    Bases sit at odd page multiples so different arrays decorrelate in
    the channel/rank/bank address bits — real allocators never hand out
    192 MB-aligned arrays, and bank-aligned bases would make every
    stream collide in one bank.
    """
    return index * 40961 * PAGE  # 40961 is odd: bank bits vary per array


def _chunk(core: int, span_bytes: int, element_bytes: int = 8) -> int:
    """Element offset where ``core``'s chunk of a shared array starts.

    Parallel loops partition iterations across threads, so core ``i``
    sweeps the ``i``-th chunk; a small page-odd skew keeps cores from
    marching bank-synchronously.
    """
    elements = span_bytes // element_bytes
    skew = core * 131 * (PAGE // element_bytes)
    return (core * elements) // N_CORES + skew


# ----------------------------------------------------------------------
# Per-benchmark access-stream builders (arrays shared across cores)
# ----------------------------------------------------------------------

def _gups(rng, core, n):
    # HPCC RandomAccess: read-modify-write at random slots of one table.
    return update_pairs(rng, n, base=_array_base(0), span_bytes=256 * MB)


def _cg(rng, core, n):
    # NAS CG: streaming matrix/rowptr + random gathers into the vector.
    span = 160 * MB
    seq = sequential_stream(
        rng, n - int(n * 0.45), _array_base(1), span,
        write_fraction=0.06, start_offset=_chunk(core, span),
    )
    gather = random_access(rng, int(n * 0.45), _array_base(2), 24 * MB)
    return interleave(rng, [seq, gather])


def _mg(rng, core, n):
    # NAS MG: V-cycle sweeps at several grid resolutions.
    levels = []
    remaining = n
    for level, stride in enumerate((8, 8, 8, 8)):
        take = remaining // 2 if level < 3 else remaining
        remaining -= take
        span = 36 * MB >> level
        # Restriction reads the fine grid, prolongation writes it:
        # alternate levels carry the writes.
        levels.append(
            strided_sweep(
                rng, take, _array_base(3 + level) + 8 * _chunk(core, span),
                span, stride_bytes=stride,
                write_fraction=0.55 if level % 2 else 0.05,
            )
        )
    return interleave(rng, levels, chunk=16)


def _scalparc(rng, core, n):
    # NuMineBench ScalParC: attribute-list scans + random tree updates.
    span = 96 * MB
    scan = sequential_stream(
        rng, (2 * n) // 3, _array_base(8), span,
        write_fraction=0.15, start_offset=_chunk(core, span),
    )
    tree = random_access(rng, n - (2 * n) // 3, _array_base(9), 32 * MB,
                         write_fraction=0.3)
    return interleave(rng, [scan, tree], chunk=8)


def _histogram(rng, core, n):
    # Phoenix histogram: stream the image, bump counters in a small table.
    span = 128 * MB
    image = sequential_stream(
        rng, (5 * n) // 6, _array_base(10), span,
        start_offset=_chunk(core, span),
    )
    counters = random_access(rng, n - (5 * n) // 6, _array_base(11),
                             MB // 2, write_fraction=0.5)
    return interleave(rng, [image, counters], chunk=10)


def _mm(rng, core, n):
    # Phoenix matrix multiply, blocked: the tile set lives in the L1/L2,
    # so memory traffic is rare tile refills.
    return tile_reuse(
        rng, n, base=_array_base(12) + core * 193 * PAGE,
        span_bytes=70 * MB, tile_bytes=24 * 1024, reuse_factor=8,
        write_fraction=0.04,
    )


def _strmatch(rng, core, n):
    # Phoenix string match: one pass over the file, heavy per-byte work.
    span = 50 * MB
    return sequential_stream(
        rng, n, _array_base(13), span, write_fraction=0.02,
        start_offset=_chunk(core, span),
    )


def _art(rng, core, n):
    # SPEC OMP art: repeated sweeps over the F2 neural-net arrays.
    sweeps = []
    for i in range(3):
        span = 12 * MB
        write_fraction = 0.85 if i == 2 else 0.02  # weights updated once
        sweeps.append(
            sequential_stream(
                rng, n // 3, _array_base(14 + i), span,
                write_fraction=write_fraction,
                start_offset=_chunk(core, span),
            )
        )
    return interleave(rng, sweeps, chunk=12)


def _swim(rng, core, n):
    # SPEC OMP swim: shallow-water stencil; the input grids (u, v, p)
    # are read-only within a sweep, the output grids are fully written.
    grids = []
    for i in range(4):
        span = 48 * MB
        write_fraction = 0.85 if i >= 2 else 0.0
        grids.append(
            sequential_stream(
                rng, n // 4, _array_base(18 + i), span,
                write_fraction=write_fraction,
                start_offset=_chunk(core, span),
            )
        )
    return interleave(rng, grids, chunk=4)


def _fft(rng, core, n):
    # SPLASH-2 FFT: butterfly passes with doubling strides, in place.
    passes = []
    remaining = n
    span = 64 * MB
    for level, stride in enumerate((16, 16, 16, 128)):
        take = remaining // 2 if level < 3 else remaining
        remaining -= take
        passes.append(
            strided_sweep(
                rng, take, _array_base(22) + 8 * _chunk(core, span),
                span, stride_bytes=stride, write_fraction=0.45,
            )
        )
    return interleave(rng, passes, chunk=8)


def _ocean(rng, core, n):
    # SPLASH-2 OCEAN: red-black sweeps; four source grids are read,
    # two destination grids are written in place.
    grids = []
    for i in range(6):
        span = 24 * MB
        write_fraction = 0.9 if i >= 4 else 0.05
        grids.append(
            sequential_stream(
                rng, n // 6, _array_base(23 + i), span,
                write_fraction=write_fraction,
                start_offset=_chunk(core, span),
            )
        )
    return interleave(rng, grids, chunk=3)


# ----------------------------------------------------------------------
# The suite (Table 3), with data-value mixtures per benchmark
# ----------------------------------------------------------------------

BENCHMARKS: dict[str, BenchmarkSpec] = {}


def _register(spec: BenchmarkSpec) -> None:
    BENCHMARKS[spec.name] = spec


_register(BenchmarkSpec(
    "GUPS", "HPCC", "2^25 table, 1048576 updates",
    insts_per_access=2.3, dependent_fraction=0.10,
    data_mix={"int4": 0.26, "int2": 0.18, "zero": 0.42, "random": 0.14},
    build=_gups, access_scale=0.7,
))
_register(BenchmarkSpec(
    "CG", "NAS OpenMP", "Class A",
    insts_per_access=5.4, dependent_fraction=0.08,
    data_mix={"fp": 0.48, "int4": 0.16, "zero": 0.36},
    build=_cg, access_scale=0.7,
))
_register(BenchmarkSpec(
    "MG", "NAS OpenMP", "Class A",
    insts_per_access=31.0, dependent_fraction=0.0,
    data_mix={"fp": 0.60, "zero": 0.40},
    build=_mg, access_scale=1.0,
))
_register(BenchmarkSpec(
    "SCALPARC", "NuMineBench", "F26-A32-D125K.tab",
    insts_per_access=10.8, dependent_fraction=0.15,
    data_mix={"int2": 0.28, "int4": 0.22, "int1": 0.14, "zero": 0.32,
              "random": 0.04},
    build=_scalparc, access_scale=0.8,
))
_register(BenchmarkSpec(
    "HISTOGRAM", "Phoenix", "small",
    insts_per_access=47.0, dependent_fraction=0.0,
    data_mix={"int1": 0.40, "int4": 0.14, "zero": 0.36, "text": 0.10},
    build=_histogram,
))
_register(BenchmarkSpec(
    "MM", "Phoenix", "3000 x 3000 matrix",
    insts_per_access=120.0, dependent_fraction=0.0,
    data_mix={"int2": 0.40, "int1": 0.18, "zero": 0.36, "fp": 0.06},
    build=_mm, access_scale=2.0,
))
_register(BenchmarkSpec(
    "STRMATCH", "Phoenix", "50MB file",
    insts_per_access=60.0, dependent_fraction=0.0,
    data_mix={"text": 0.48, "zero": 0.34, "int1": 0.18},
    build=_strmatch, access_scale=1.5,
))
_register(BenchmarkSpec(
    "ART", "SPEC OpenMP", "MinneSpec-Large",
    insts_per_access=29.0, dependent_fraction=0.0,
    data_mix={"fp": 0.54, "zero": 0.32, "int2": 0.14},
    build=_art,
))
_register(BenchmarkSpec(
    "SWIM", "SPEC OpenMP", "MinneSpec-Large",
    insts_per_access=17.5, dependent_fraction=0.0,
    data_mix={"fp": 0.66, "zero": 0.34},
    build=_swim, access_scale=1.5,
))
_register(BenchmarkSpec(
    "FFT", "SPLASH-2", "2^20 complex data points",
    insts_per_access=49.0, dependent_fraction=0.0,
    data_mix={"fp": 0.72, "zero": 0.28},
    build=_fft, access_scale=0.6,
))
_register(BenchmarkSpec(
    "OCEAN", "SPLASH-2", "514 x 514 ocean",
    insts_per_access=4.8, dependent_fraction=0.0,
    data_mix={"fp": 0.64, "zero": 0.36},
    build=_ocean, access_scale=1.5,
))


def get_benchmark(name: str) -> BenchmarkSpec:
    """Look up a benchmark by its Table 3 name (case-insensitive)."""
    try:
        return BENCHMARKS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {list(BENCHMARK_ORDER)}"
        ) from None


def known_benchmark(name: str) -> bool:
    """Whether ``name`` is a Table 3 benchmark or a parseable mix name.

    The workload-registry analogue of
    :func:`repro.core.policies.known_policy`; malformed mix names count
    as unknown (use :func:`validate_benchmark` for the precise error).
    """
    try:
        validate_benchmark(name)
    except (KeyError, ValueError):
        return False
    return True


def validate_benchmark(name: str) -> None:
    """Raise unless ``name`` builds a trace.

    ``KeyError`` for an unknown plain benchmark (listing the known
    names, mirroring the policy registry check in
    :class:`~repro.campaign.spec.RunSpec`), or
    :class:`~repro.workloads.mixed.MixNameError` for a string that
    claims the ``MIX@`` grammar but does not parse.
    """
    from .mixed import MixSpec, is_mix_name

    if is_mix_name(name):
        MixSpec.parse(name)  # raises MixNameError / KeyError on bad parts
        return
    if name.upper() not in BENCHMARKS:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {list(BENCHMARK_ORDER)} "
            "or a MIX@ARRIVAL:GAP@Z:BIAS@BENCH:WEIGHT+... traffic mix"
        )


_TRACE_CACHE: dict[tuple, MemoryTrace] = {}

DEFAULT_ACCESSES_PER_CORE = 24_000


def build_trace(
    name: str,
    config: SystemConfig,
    seed: int = 0,
    accesses_per_core: int = DEFAULT_ACCESSES_PER_CORE,
    use_cache: bool = True,
) -> MemoryTrace:
    """Generate (or fetch from cache) the memory trace for a benchmark.

    The trace depends only on the benchmark, the system configuration,
    the seed, and the scale — never on the coding policy — so every
    policy comparison in the experiments replays the *same* trace.
    """
    from ..system.hierarchy import filter_through_hierarchy
    from .mixed import MixSpec, build_mixed_trace, is_mix_name

    if is_mix_name(name):
        # Scenario traffic: DRAM-level synthesis, no hierarchy filter.
        # The trace depends on the mix name, the seed, the scale, and
        # (of the config) only the core count.
        mix = MixSpec.parse(name)
        key = (mix.name, config.cores, seed, int(accesses_per_core))
        if use_cache and key in _TRACE_CACHE:
            return _TRACE_CACHE[key]
        trace = build_mixed_trace(
            mix, config, seed=seed, accesses_per_core=accesses_per_core
        )
        if use_cache:
            _TRACE_CACHE[key] = trace
        return trace

    spec = get_benchmark(name)
    scaled = max(64, int(accesses_per_core * spec.access_scale))
    key = (spec.name, config.name, seed, scaled)
    if use_cache and key in _TRACE_CACHE:
        return _TRACE_CACHE[key]
    streams = spec.streams(config, seed, scaled)
    trace = filter_through_hierarchy(
        streams, config, spec.data_model(), seed=seed, name=spec.name
    )
    if use_cache:
        _TRACE_CACHE[key] = trace
    return trace


def clear_trace_cache() -> None:
    """Drop memoised traces (tests use this to bound memory)."""
    _TRACE_CACHE.clear()

#!/usr/bin/env python
"""Decision-logic tour: watch the rdyX comparators choose codes.

Builds a tiny hand-crafted scenario on one DDR4 channel and walks the
MiL decision logic (Figure 11) through its cases:

1. an empty look-ahead window  -> the long (8,17) 3-LWC slot is granted;
2. a soon-ready demand read    -> fall back to MiLC;
3. a prefetch in the window    -> still 3-LWC (delaying it stalls nobody);
4. a write granted a long slot -> the Section 4.6 write optimization
   ships whichever of MiLC / 3-LWC has fewer zeros for *that* data.

Usage::

    python examples/decision_logic_tour.py
"""

from dataclasses import replace

import numpy as np

from repro.coding import precompute_line_zeros
from repro.controller import ChannelController, MemoryRequest
from repro.core import MiLConfig, MiLPolicy
from repro.dram import DDR4_3200, DDR4_GEOMETRY, AddressMapper, CommandType


def make_request(mapper, line, write=False, prefetch=False, line_id=0):
    mapped = replace(mapper.map(line * 64), channel=0)
    request = MemoryRequest(
        address=mapper.reverse(mapped), is_write=write,
        is_prefetch=prefetch, line_id=line_id,
    )
    request.mapped = mapped
    return request


def open_row_for(controller, request, at=0):
    m = request.mapped
    cycle = controller.channel.earliest_issue(
        CommandType.ACTIVATE, m.rank, m.bank_group, m.bank, at
    )
    controller.channel.issue(
        CommandType.ACTIVATE, m.rank, m.bank_group, m.bank, cycle, row=m.row
    )


def scenario(title, queued, target, policy, controller, now=200):
    for request in queued:
        controller.enqueue(request, now - 1)
    choice = policy.choose(controller, target, now)
    others = controller.column_ready_within(
        now, policy.config.effective_lookahead, exclude=target
    )
    print(f"{title}")
    print(f"  queued column commands ready within X=8: {others}")
    print(f"  decision: transmit with {choice!r}\n")
    for request in queued:  # reset for the next scenario
        queue = (controller.write_queue if request.is_write
                 else controller.read_queue)
        queue.remove(request)
    return choice


def main() -> None:
    mapper = AddressMapper(DDR4_GEOMETRY, channels=2)
    controller = ChannelController(DDR4_3200, DDR4_GEOMETRY,
                                   refresh_enabled=False)

    target = make_request(mapper, line=0)
    neighbour = make_request(mapper, line=1)  # same row as the target
    prefetch = make_request(mapper, line=2, prefetch=True)
    open_row_for(controller, target)

    print("MiL decision logic walk-through (X = 8 cycles)\n" + "=" * 48)
    policy = MiLPolicy()

    scenario("1. Look-ahead window empty", [], target, policy, controller)
    scenario("2. A demand read is ready in the window", [neighbour],
             target, policy, controller)
    scenario("3. Only a prefetch is in the window", [prefetch],
             target, policy, controller)

    # 4. Write optimization: craft two payloads with opposite winners.
    rng = np.random.default_rng(11)
    lines = np.stack([
        np.full(64, 0x37, dtype=np.uint8),       # memset line: MiLC wins
        rng.integers(0, 256, 64, dtype=np.uint8) # random: 3-LWC wins
    ])
    zeros = precompute_line_zeros(lines, ("dbi", "milc", "3lwc"))
    print("4. Write optimization (Section 4.6): zeros per candidate")
    kinds = ("memset line", "random line")
    for i, kind in enumerate(kinds):
        print(f"   {kind:14s} milc={zeros['milc'][i]:4d} "
              f"3lwc={zeros['3lwc'][i]:4d}")
    opt_policy = MiLPolicy(MiLConfig(), zeros_by_scheme=zeros)
    for i, kind in enumerate(kinds):
        write = make_request(mapper, line=0, write=True, line_id=i)
        choice = opt_policy.choose(controller, write, 200)
        print(f"   write of {kind:14s} -> ships {choice!r}")
    print(f"\n   writes rerouted to the sparser code: "
          f"{opt_policy.write_optimized}")

    print("\nGrant counters:", {
        "long (3-LWC)": policy.long_grants + opt_policy.long_grants,
        "base (MiLC)": policy.base_grants + opt_policy.base_grants,
    })


if __name__ == "__main__":
    main()

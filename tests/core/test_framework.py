"""End-to-end tests for the MiL run framework."""

import numpy as np
import pytest

from repro.core import POLICIES, RunSummary, make_policy_factory, run
from repro.core.framework import energy_params_for, system_energy_params_for
from repro.system import NIAGARA_SERVER, SNAPDRAGON_MOBILE

SCALE = 1500  # accesses per core: small but statistically meaningful


@pytest.fixture(scope="module")
def gups_runs():
    return {
        policy: run("GUPS", NIAGARA_SERVER, policy, accesses_per_core=SCALE)
        for policy in ("dbi", "milc", "mil", "3lwc")
    }


class TestRunSummary:
    def test_round_trips_through_json(self, gups_runs):
        import json

        summary = gups_runs["mil"]
        restored = RunSummary.from_dict(
            json.loads(json.dumps(summary.to_dict()))
        )
        assert restored.cycles == summary.cycles
        assert restored.scheme_counts == summary.scheme_counts
        assert restored.dram_energy == summary.dram_energy

    def test_pending_fractions_sum_to_one(self, gups_runs):
        p = gups_runs["dbi"].pending
        assert sum(p.values()) == pytest.approx(1.0)

    def test_histograms_populated(self, gups_runs):
        assert sum(gups_runs["dbi"].idle_gaps.values()) > 0
        assert sum(gups_runs["dbi"].slack.values()) > 0


class TestPolicyEffects:
    def test_same_trace_all_policies(self, gups_runs):
        records = {s.trace_records for s in gups_runs.values()}
        assert len(records) == 1  # paired comparison guaranteed

    def test_sparse_codes_cut_zeros(self, gups_runs):
        base = gups_runs["dbi"].total_zeros
        assert gups_runs["milc"].total_zeros < base
        assert gups_runs["3lwc"].total_zeros < gups_runs["milc"].total_zeros

    def test_mil_between_milc_and_always_lwc(self, gups_runs):
        assert (
            gups_runs["3lwc"].total_zeros
            <= gups_runs["mil"].total_zeros
            <= gups_runs["milc"].total_zeros
        )

    def test_always_lwc_slowest(self, gups_runs):
        assert gups_runs["3lwc"].cycles >= gups_runs["mil"].cycles

    def test_mil_mixes_schemes(self, gups_runs):
        counts = gups_runs["mil"].scheme_counts
        assert counts.get("milc", 0) > 0
        assert counts.get("3lwc", 0) > 0

    def test_io_energy_tracks_zeros(self, gups_runs):
        base = gups_runs["dbi"]
        mil = gups_runs["mil"]
        io_ratio = mil.dram_energy["io"] / base.dram_energy["io"]
        zero_ratio = mil.total_zeros / base.total_zeros
        assert abs(io_ratio - zero_ratio) < 0.15

    def test_energy_breakdown_totals(self, gups_runs):
        s = gups_runs["mil"]
        assert s.dram_total_j == pytest.approx(sum(s.dram_energy.values()))
        assert s.system_energy["total"] == pytest.approx(
            s.system_energy["cores"] + s.system_energy["uncore"]
            + s.system_energy["dram"]
        )


class TestFactories:
    def test_all_policies_constructible(self):
        for policy in POLICIES:
            factory = make_policy_factory(policy)
            p = factory()
            assert hasattr(p, "choose") and hasattr(p, "extra_cl")

    def test_unknown_policy_rejected(self):
        with pytest.raises(KeyError):
            make_policy_factory("huffman")

    def test_energy_params_lookup(self):
        assert energy_params_for(NIAGARA_SERVER).name == "DDR4-3200"
        assert energy_params_for(SNAPDRAGON_MOBILE).name == "LPDDR3-1600"
        assert system_energy_params_for(NIAGARA_SERVER).name == "ddr4-server"

    def test_energy_params_match_dram_generation_not_name(self):
        # Design-space variants rename the system; constants key off the
        # DRAM generation, so the rename must still resolve.
        import dataclasses

        variant = dataclasses.replace(NIAGARA_SERVER, name="weird[x]")
        assert energy_params_for(variant).name == "DDR4-3200"

    def test_energy_params_unknown_dram_generation(self):
        import dataclasses

        from repro.dram.timing import DDR3_1600

        odd = dataclasses.replace(NIAGARA_SERVER, timing=DDR3_1600)
        with pytest.raises(KeyError):
            energy_params_for(odd)


class TestSweepPolicies:
    def test_bl_sweep_policies_have_no_energy(self):
        summary = run("MM", NIAGARA_SERVER, "bl12", accesses_per_core=SCALE)
        assert summary.dram_energy == {}
        assert summary.cycles > 0

    def test_lookahead_parameter_reaches_policy(self):
        eager = run("MM", NIAGARA_SERVER, "mil", lookahead=0,
                    accesses_per_core=SCALE)
        cautious = run("MM", NIAGARA_SERVER, "mil", lookahead=40,
                       accesses_per_core=SCALE)
        share = lambda s: (  # noqa: E731
            s.scheme_counts.get("3lwc", 0)
            / max(1, sum(s.scheme_counts.values()))
        )
        assert share(eager) >= share(cautious)

    def test_determinism(self):
        a = run("MM", NIAGARA_SERVER, "mil", accesses_per_core=SCALE, seed=3)
        b = run("MM", NIAGARA_SERVER, "mil", accesses_per_core=SCALE, seed=3)
        assert a.cycles == b.cycles
        assert a.total_zeros == b.total_zeros

"""Integration-style tests for the channel controller engine."""

import numpy as np
import pytest

from repro.controller import AlwaysScheme, ChannelController, MemoryRequest
from repro.dram import (
    DDR4_3200,
    DDR4_GEOMETRY,
    AddressMapper,
    BusAuditor,
    CommandType,
)

MAPPER = AddressMapper(DDR4_GEOMETRY, channels=2)


def make_request(line, write=False, mapper=MAPPER):
    # Force every request onto channel 0 by clearing the channel bits.
    from dataclasses import replace

    m = replace(mapper.map(line * 64), channel=0)
    addr = mapper.reverse(m)
    r = MemoryRequest(address=addr, is_write=write, line_id=line)
    r.mapped = m
    return r


def run_to_completion(mc, requests, start=0, max_cycles=2_000_000):
    """Feed all requests at ``start`` (respecting queue space) and drain."""
    now = start
    pending = list(requests)
    done = []
    while (pending or mc.has_pending) and now < max_cycles:
        while pending and mc.can_accept(pending[0].is_write):
            mc.enqueue(pending.pop(0), now)
        mc.step(now)
        done.extend(mc.drain_completions())
        nxt = mc.next_event(now)
        now = max(now + 1, nxt) if nxt is not None else now + 1
    done.extend(mc.drain_completions())
    finish = max((r.finish_cycle for r in done if r.finish_cycle), default=now)
    return done, finish


class TestBasicService:
    def test_single_read_latency(self):
        mc = ChannelController(DDR4_3200, DDR4_GEOMETRY)
        req = make_request(0)
        done, _ = run_to_completion(mc, [req])
        assert len(done) == 1
        t = DDR4_3200
        # Cold read: ACT at 0, RD at tRCD, data ends CL + 4 later.
        assert req.finish_cycle == t.RCD + t.CL + 4
        assert req.scheme == "dbi"

    def test_row_hit_is_faster_than_miss(self):
        mc = ChannelController(DDR4_3200, DDR4_GEOMETRY)
        same_row = [make_request(i) for i in range(2)]  # consecutive lines
        done, _ = run_to_completion(mc, same_row)
        lat = sorted(r.queue_latency() for r in done)
        assert lat[1] - lat[0] <= DDR4_3200.CCD_L  # second is a row hit

    def test_all_requests_complete(self):
        mc = ChannelController(DDR4_3200, DDR4_GEOMETRY)
        rng = np.random.default_rng(18)
        reqs = [
            make_request(int(l), write=bool(rng.random() < 0.3))
            for l in rng.integers(0, 1 << 16, size=200)
        ]
        done, _ = run_to_completion(mc, reqs)
        assert len(done) == len(reqs)
        assert all(r.completed for r in done)

    def test_bus_log_always_clean(self):
        mc = ChannelController(DDR4_3200, DDR4_GEOMETRY)
        rng = np.random.default_rng(19)
        reqs = [
            make_request(int(l), write=bool(rng.random() < 0.4))
            for l in rng.integers(0, 1 << 14, size=300)
        ]
        run_to_completion(mc, reqs)
        assert BusAuditor(mc.timing).check(mc.channel.transactions) == []


class TestForwardingAndCoalescing:
    def test_read_forwarded_from_write_queue(self):
        mc = ChannelController(DDR4_3200, DDR4_GEOMETRY)
        w = make_request(5, write=True)
        r = make_request(5, write=False)
        mc.enqueue(w, 0)
        mc.enqueue(r, 1)
        assert r.completed
        assert r.scheme == "forwarded"
        assert mc.forwarded_reads == 1

    def test_write_coalescing_counted(self):
        mc = ChannelController(DDR4_3200, DDR4_GEOMETRY)
        mc.enqueue(make_request(5, write=True), 0)
        mc.enqueue(make_request(5, write=True), 1)
        assert mc.coalesced_writes == 1
        assert len(mc.write_queue) == 1


class TestWriteDrainBehaviour:
    def test_writes_eventually_drain(self):
        mc = ChannelController(DDR4_3200, DDR4_GEOMETRY)
        writes = [make_request(i * 37, write=True) for i in range(64)]
        done, _ = run_to_completion(mc, writes)
        assert len(done) == 64
        assert mc.channel.write_count == 64

    def test_reads_prioritised_under_light_write_load(self):
        mc = ChannelController(DDR4_3200, DDR4_GEOMETRY)
        w = make_request(1000, write=True)
        r = make_request(2000, write=False)
        mc.enqueue(w, 0)
        mc.enqueue(r, 0)
        # Drive a few scheduling steps: the read's bank work must start
        # first because the drain watermark hasn't been reached.
        now = 0
        for _ in range(10):
            mc.step(now)
            nxt = mc.next_event(now)
            if nxt is None:
                break
            now = max(now + 1, nxt)
            if r.completed:
                break
        assert r.completed or not w.completed


class TestRefresh:
    def test_refresh_issued_under_trickled_load(self):
        mc = ChannelController(DDR4_3200, DDR4_GEOMETRY)
        rng = np.random.default_rng(20)
        # One request every ~REFI/4 cycles: the run spans many refresh
        # intervals with idle gaps for opportunistic refresh.
        gap = DDR4_3200.REFI // 4
        arrivals = [
            (i * gap, make_request(int(l)))
            for i, l in enumerate(rng.integers(0, 1 << 18, size=40))
        ]
        now = 0
        idx = 0
        while idx < len(arrivals) or mc.has_pending:
            while idx < len(arrivals) and arrivals[idx][0] <= now:
                mc.enqueue(arrivals[idx][1], now)
                idx += 1
            mc.step(now)
            mc.drain_completions()
            nxt = mc.next_event(now)
            bounds = [t for t in (nxt, arrivals[idx][0] if idx < len(arrivals) else None) if t is not None]
            if not bounds:
                break
            now = max(now + 1, min(bounds))
        assert mc.channel.refresh_count > 0
        # Debt is bounded: the controller keeps up with its obligations.
        assert mc.refresh.debt(0) < 12

    def test_idle_system_refreshes_opportunistically(self):
        mc = ChannelController(DDR4_3200, DDR4_GEOMETRY)
        now = DDR4_3200.REFI + 1
        mc.step(now)
        assert mc.channel.refresh_count == 1


class TestPolicyHook:
    def test_fixed_bl16_policy_extends_bursts(self):
        mc = ChannelController(
            DDR4_3200, DDR4_GEOMETRY, policy=AlwaysScheme("3lwc")
        )
        reqs = [make_request(i) for i in range(8)]
        done, _ = run_to_completion(mc, reqs)
        assert all(r.scheme == "3lwc" for r in done)
        assert all(tr.cycles == 8 for tr in mc.channel.transactions)
        # Codec latency folded in: CL is one higher than baseline.
        assert mc.timing.CL == DDR4_3200.CL + 1

    def test_longer_bursts_slow_bus_limited_stream(self):
        def total_time(scheme):
            mc = ChannelController(
                DDR4_3200, DDR4_GEOMETRY, policy=AlwaysScheme(scheme)
            )
            reqs = [make_request(i) for i in range(64)]
            _, end = run_to_completion(mc, reqs)
            return end

        assert total_time("3lwc") > total_time("dbi")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(KeyError):
            AlwaysScheme("bogus")


class TestEventSkipping:
    def test_next_event_none_when_nothing_pending(self):
        mc = ChannelController(
            DDR4_3200, DDR4_GEOMETRY, refresh_enabled=False
        )
        assert mc.next_event(0) is None

    def test_next_event_monotonic(self):
        mc = ChannelController(DDR4_3200, DDR4_GEOMETRY)
        mc.enqueue(make_request(0), 0)
        nxt = mc.next_event(0)
        assert nxt is not None and nxt >= 1

    def test_step_respects_one_command_per_cycle(self):
        mc = ChannelController(DDR4_3200, DDR4_GEOMETRY)
        mc.enqueue(make_request(0), 0)
        mc.enqueue(make_request(1 << 10), 0)
        assert mc.step(0) is True
        assert mc.step(0) is False  # same cycle: command bus busy

"""Robustness bench: are the headline ratios stable across seeds?

Synthetic workloads could, in principle, produce results that hinge on
one lucky seed.  This target re-runs the MiL-vs-DBI comparison on three
seeds for a latency-bound and a streaming benchmark and reports the
spread; the assertion bounds it.
"""

import numpy as np

from repro.analysis import format_table
from repro.campaign import RunSpec
from repro.experiments.runner import gather

BENCHES = ("GUPS", "SWIM")
SEEDS = (0, 1, 2)
SCALE = 3000


def _spec(bench, policy, seed):
    return RunSpec(benchmark=bench, system="ddr4-server", policy=policy,
                   accesses_per_core=SCALE, seed=seed)


def run_stability():
    runs = gather(
        _spec(bench, policy, seed)
        for bench in BENCHES
        for policy in ("dbi", "mil")
        for seed in SEEDS
    )
    rows = []
    spreads = []
    for bench in BENCHES:
        zero_ratios = []
        time_ratios = []
        for seed in SEEDS:
            base = runs[_spec(bench, "dbi", seed)]
            mil = runs[_spec(bench, "mil", seed)]
            zero_ratios.append(mil.total_zeros / max(1, base.total_zeros))
            time_ratios.append(mil.cycles / base.cycles)
        rows.append([
            bench,
            float(np.mean(zero_ratios)),
            float(np.std(zero_ratios)),
            float(np.mean(time_ratios)),
            float(np.std(time_ratios)),
        ])
        spreads.append(float(np.std(zero_ratios)))
    return rows, spreads


def test_seed_stability(benchmark, show):
    rows, spreads = benchmark.pedantic(run_stability, rounds=1, iterations=1)

    class _R:
        def format(self):
            return format_table(
                ["benchmark", "zeros_mean", "zeros_std", "time_mean",
                 "time_std"],
                rows,
                title=f"Seed stability over seeds {SEEDS} (MiL vs DBI)",
            )

    show(_R())
    # The zero-reduction ratio must not swing with the seed.
    assert max(spreads) < 0.03

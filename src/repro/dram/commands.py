"""DRAM command vocabulary and geometry descriptors."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

__all__ = ["CommandType", "Geometry", "DDR4_GEOMETRY", "LPDDR3_GEOMETRY"]


class CommandType(Enum):
    """The command set the memory controller can issue.

    Only the commands that matter for timing and energy are modelled;
    mode-register writes and ZQ calibration are folded into background
    power.
    """

    ACTIVATE = auto()
    PRECHARGE = auto()
    READ = auto()
    WRITE = auto()
    REFRESH = auto()

    @property
    def is_column(self) -> bool:
        """True for the commands MiL's decision logic cares about."""
        return self in (CommandType.READ, CommandType.WRITE)


@dataclass(frozen=True)
class Geometry:
    """Channel organisation: how many ranks/groups/banks/rows/columns.

    Table 2: both systems use channels/ranks/banks = 2/2/8 per channel.
    DDR4 organises its 8 banks as 2 bank groups of 4; LPDDR3 has no bank
    groups (modelled as a single group of 8, with CCD_S == CCD_L making
    the distinction moot).
    """

    ranks: int
    bank_groups: int
    banks_per_group: int
    rows: int
    row_bytes: int  # DRAM page size (Table 2: 8 KB DDR4, 4 KB LPDDR3)
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if min(self.ranks, self.bank_groups, self.banks_per_group, self.rows) < 1:
            raise ValueError("geometry dimensions must be positive")
        if self.row_bytes % self.line_bytes != 0:
            raise ValueError("row size must hold whole cache lines")

    @property
    def banks(self) -> int:
        """Total banks per rank."""
        return self.bank_groups * self.banks_per_group

    @property
    def lines_per_row(self) -> int:
        """Cache lines per DRAM row (column addresses per page)."""
        return self.row_bytes // self.line_bytes


DDR4_GEOMETRY = Geometry(
    ranks=2, bank_groups=2, banks_per_group=4, rows=1 << 15, row_bytes=8192
)

LPDDR3_GEOMETRY = Geometry(
    ranks=2, bank_groups=1, banks_per_group=8, rows=1 << 14, row_bytes=4096
)

"""Tests for the Table 2 timing parameter sets."""

import pytest

from repro.dram import DDR4_3200, LPDDR3_1600, TimingParams


class TestTable2Values:
    def test_ddr4_row(self):
        t = DDR4_3200
        assert (t.CL, t.WL, t.CCD_S, t.CCD_L) == (20, 16, 4, 8)
        assert (t.RC, t.RTP, t.RP, t.RCD, t.RAS) == (72, 12, 20, 20, 52)
        assert (t.WR, t.RTRS, t.WTR_S, t.WTR_L) == (4, 2, 4, 12)
        assert (t.RRD_S, t.RRD_L, t.FAW) == (9, 11, 48)
        assert (t.REFI, t.RFC) == (12480, 416)

    def test_lpddr3_row(self):
        t = LPDDR3_1600
        assert (t.CL, t.WL, t.CCD_S, t.CCD_L) == (12, 6, 4, 4)
        assert (t.RC, t.RTP, t.RP, t.RCD, t.RAS) == (51, 6, 16, 15, 34)
        assert (t.WR, t.RTRS, t.WTR_S, t.WTR_L) == (6, 1, 6, 6)
        assert (t.RRD_S, t.RRD_L, t.FAW) == (8, 8, 40)
        assert (t.REFI, t.RFC) == (3120, 104)

    def test_lpddr3_has_no_bank_group_distinction(self):
        t = LPDDR3_1600
        assert t.CCD_S == t.CCD_L
        assert t.WTR_S == t.WTR_L
        assert t.RRD_S == t.RRD_L

    def test_clock_frequencies(self):
        # DDR4-3200: 1.6 GHz clock (0.625 ns); LPDDR3-1600: 0.8 GHz.
        assert DDR4_3200.clock_ghz == pytest.approx(1.6)
        assert LPDDR3_1600.clock_ghz == pytest.approx(0.8)
        assert DDR4_3200.cycle_ns == pytest.approx(0.625)


class TestExtraCL:
    def test_mil_codec_latency_folds_into_column_path(self):
        t = DDR4_3200.with_extra_cl(1)
        assert t.CL == 21
        assert t.WL == 17
        assert t.RCD == DDR4_3200.RCD  # row path untouched

    def test_zero_extra_returns_same_object(self):
        assert DDR4_3200.with_extra_cl(0) is DDR4_3200

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DDR4_3200.with_extra_cl(-1)


class TestValidation:
    def test_rejects_negative_parameter(self):
        with pytest.raises(ValueError):
            TimingParams(
                name="bad", CL=-1, WL=1, CCD_S=1, CCD_L=1, RC=1, RTP=1,
                RP=1, RCD=1, RAS=1, WR=1, RTRS=1, WTR_S=1, WTR_L=1,
                RRD_S=1, RRD_L=1, FAW=1, REFI=1, RFC=1, clock_ghz=1.0,
            )

    def test_rejects_ccd_inversion(self):
        with pytest.raises(ValueError):
            TimingParams(
                name="bad", CL=1, WL=1, CCD_S=8, CCD_L=4, RC=1, RTP=1,
                RP=1, RCD=1, RAS=1, WR=1, RTRS=1, WTR_S=1, WTR_L=1,
                RRD_S=1, RRD_L=1, FAW=1, REFI=1, RFC=1, clock_ghz=1.0,
            )

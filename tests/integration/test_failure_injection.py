"""Failure-injection tests: the guard rails must actually fire.

A simulator that silently produces numbers under a broken model is
worse than one that crashes; these tests deliberately break pieces of
the stack and assert the right alarm goes off.
"""

import numpy as np
import pytest

from repro.controller import AlwaysScheme, ChannelController, MemoryRequest
from repro.controller.queues import QueueFullError, TransactionQueue
from repro.dram import (
    DDR4_3200,
    DDR4_GEOMETRY,
    AddressMapper,
    BusAuditor,
    CommandType,
    DRAMChannel,
)
from repro.system import NIAGARA_SERVER, simulate
from repro.workloads import MemoryTrace, TraceRecord

MAPPER = AddressMapper(DDR4_GEOMETRY, channels=2)


class TestAuditorCatchesBrokenChannel:
    def test_disabled_turnaround_bubble_is_flagged(self, monkeypatch):
        # Break the channel: pretend no bus bubble is ever needed.  The
        # independent auditor must catch the resulting protocol holes.
        monkeypatch.setattr(
            DRAMChannel, "_bus_gap", lambda self, rank, is_write: 0
        )
        mc = ChannelController(DDR4_3200, DDR4_GEOMETRY,
                               refresh_enabled=False)
        now = 0
        from dataclasses import replace

        # Alternate ranks over row hits so column commands pipeline at
        # tCCD and their bursts land back-to-back across ranks — which
        # is exactly what tRTRS forbids.
        for i in range(24):
            addr = ((i % 2) << 14) | ((i // 2) * 64)
            m = replace(MAPPER.map(addr), channel=0)
            req = MemoryRequest(address=MAPPER.reverse(m), is_write=False)
            req.mapped = m
            mc.enqueue(req, now)
        for _ in range(20000):
            mc.step(now)
            mc.drain_completions()
            nxt = mc.next_event(now)
            if nxt is None:
                break
            now = max(now + 1, nxt)
        problems = BusAuditor(mc.timing).check(mc.channel.transactions)
        assert problems, "auditor failed to flag missing bubbles"

    def test_premature_issue_rejected_by_channel(self):
        ch = DRAMChannel(DDR4_3200, DDR4_GEOMETRY)
        ch.issue(CommandType.ACTIVATE, 0, 0, 0, 0, row=1)
        with pytest.raises(ValueError, match="violates timing"):
            ch.issue(CommandType.READ, 0, 0, 0, 1)


class TestQueueOverflowAndBackpressure:
    def test_queue_overflow_is_loud(self):
        q = TransactionQueue(2)
        q.push(MemoryRequest(address=0, is_write=False))
        q.push(MemoryRequest(address=64, is_write=False))
        with pytest.raises(QueueFullError):
            q.push(MemoryRequest(address=128, is_write=False))

    def test_simulator_respects_backpressure(self):
        # 300 same-cycle independent reads cannot overflow the queues;
        # the core model must stall instead of crashing.
        records = [[
            TraceRecord(core=0, gap=0, address=i * 4096, is_write=False,
                        line_id=i)
            for i in range(300)
        ]]
        trace = MemoryTrace(
            name="burst", records_by_core=records,
            line_data=np.zeros((300, 64), dtype=np.uint8),
        )
        result = simulate(trace, NIAGARA_SERVER)
        assert result.demand_reads == 300


class TestModelGuards:
    def test_unknown_scheme_fails_at_issue_not_silently(self):
        class BadPolicy:
            extra_cl = 0

            def choose(self, controller, request, now):
                return "made-up-code"

        from dataclasses import replace

        mc = ChannelController(DDR4_3200, DDR4_GEOMETRY, policy=BadPolicy(),
                               refresh_enabled=False)
        m = replace(MAPPER.map(0), channel=0)
        req = MemoryRequest(address=0, is_write=False)
        req.mapped = m
        mc.enqueue(req, 0)
        with pytest.raises(KeyError):
            now = 0
            for _ in range(100):
                mc.step(now)
                nxt = mc.next_event(now)
                if nxt is None:
                    break
                now = nxt

    def test_simulation_deadlock_raises(self):
        # A record whose dependency can never resolve must not hang:
        # the no-candidates guard raises instead.
        record = TraceRecord(core=0, gap=0, address=0, is_write=False,
                             line_id=0, dependent=True)
        # Manually corrupt the state: dependent with no prior read is
        # fine (it issues), so instead starve the simulator by asking
        # for an impossible budget.
        trace = MemoryTrace(
            name="tiny", records_by_core=[[record]],
            line_data=np.zeros((1, 64), dtype=np.uint8),
        )
        result = simulate(trace, NIAGARA_SERVER, max_cycles=10)
        # Hitting max_cycles is reported, not looped forever.
        assert result.cycles >= 10 or result.demand_reads == 1

    def test_trace_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            MemoryTrace(
                name="bad",
                records_by_core=[[TraceRecord(0, 0, 0, False, 0)]],
                line_data=np.zeros((5, 64), dtype=np.uint8),
            )

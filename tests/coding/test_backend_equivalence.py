"""Backends are interchangeable: reference and numpy agree bit-exactly.

The backend slot (``repro.coding.registry``) only works if every
implementation of a scheme is indistinguishable from the outside —
same codewords, same zero counts, same decodes.  The pure-Python
oracle in ``repro.coding.reference`` was written independently from
the vectorised kernels precisely so this suite can catch a bug in
either: hypothesis sweeps arbitrary payloads through both backends of
every registered scheme and requires bit-exact agreement on every
public surface, including decoding each other's codewords.

The zero-table cache tests pin the consequence the campaign layer
relies on: tables (and therefore cache entries and run summaries) are
byte-identical whatever ``REPRO_CODEC_IMPL`` says, and cache keys do
not mention the backend at all.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding import pipeline, registry, zerocache
from repro.coding.bitops import bytes_to_bits

MAX_EXAMPLES = 25

# Schemes that carry a reference backend (all registered codecs do).
SCHEMES = sorted(registry.codec_schemes())

# Arbitrary whole cache lines: 1-4 lines of 64 bytes.
line_payloads = st.binary(min_size=64, max_size=256).map(
    lambda raw: np.frombuffer(
        raw[: len(raw) - len(raw) % 64], dtype=np.uint8
    ).reshape(-1, 64)
).filter(lambda lines: lines.shape[0] >= 1)


def _backends(scheme):
    info = registry.scheme_info(scheme)
    ref = info.codec_impl("reference")
    fast = info.codec_impl("numpy")
    assert type(ref) is not type(fast), (
        f"{scheme}: reference backend resolves to the numpy codec"
    )
    return ref, fast


def _blocks(lines, data_bits):
    return bytes_to_bits(lines).reshape(-1, data_bits)


@pytest.mark.parametrize("scheme", SCHEMES)
class TestBackendsAgree:
    @given(lines=line_payloads)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_encode_and_counts_bit_exact(self, scheme, lines):
        ref, fast = _backends(scheme)
        blocks = _blocks(lines, fast.data_bits)

        ref_words = ref.encode_blocks(blocks)
        fast_words = fast.encode_blocks(blocks)
        assert np.array_equal(ref_words, fast_words)
        assert np.array_equal(
            ref.count_zeros(blocks), fast.count_zeros(blocks)
        )
        assert np.array_equal(
            ref.count_zeros_bytes(lines), fast.count_zeros_bytes(lines)
        )
        assert np.array_equal(
            ref.encode_lines(lines), fast.encode_lines(lines)
        )
        assert np.array_equal(ref.line_zeros(lines), fast.line_zeros(lines))

    @given(lines=line_payloads)
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_cross_decode_round_trips(self, scheme, lines):
        # Each backend must decode the *other's* codewords: same code,
        # not merely two self-consistent codes.
        ref, fast = _backends(scheme)
        blocks = _blocks(lines, fast.data_bits)
        assert np.array_equal(
            ref.decode_blocks(fast.encode_blocks(blocks)), blocks
        )
        assert np.array_equal(
            fast.decode_blocks(ref.encode_blocks(blocks)), blocks
        )

    def test_encode_trace_matches_across_impls(self, scheme):
        rng = np.random.default_rng(2015)
        lines = rng.integers(0, 256, size=(16, 64), dtype=np.uint8)
        assert np.array_equal(
            pipeline.encode_trace(scheme, lines, impl="reference"),
            pipeline.encode_trace(scheme, lines, impl="numpy"),
        )


class TestZeroTablesImplIndependent:
    def _lines(self):
        rng = np.random.default_rng(80)
        return rng.integers(0, 256, size=(32, 64), dtype=np.uint8)

    def test_tables_byte_identical_across_impls(self, monkeypatch):
        lines = self._lines()
        tables = {}
        for impl in ("reference", "numpy"):
            monkeypatch.setenv(registry.IMPL_ENV, impl)
            assert registry.active_impl() == impl
            tables[impl] = pipeline.precompute_line_zeros(
                lines, tuple(SCHEMES), cache=False
            )
        for scheme in SCHEMES:
            ref_t, fast_t = tables["reference"][scheme], tables["numpy"][scheme]
            assert ref_t.dtype == fast_t.dtype
            assert ref_t.tobytes() == fast_t.tobytes()

    def test_cache_keys_do_not_mention_the_backend(self, monkeypatch):
        # Populate the cache under one backend, read it under the other:
        # the second precompute must be pure hits (the same read-only
        # array objects), proving keys are (digest, scheme) only.
        lines = self._lines()
        cache = zerocache.ZeroTableCache()
        digest = zerocache.lines_digest(lines)

        monkeypatch.setenv(registry.IMPL_ENV, "reference")
        first = pipeline.precompute_line_zeros(
            lines, ("dbi", "milc"), digest=digest, cache=cache
        )
        monkeypatch.setenv(registry.IMPL_ENV, "numpy")
        second = pipeline.precompute_line_zeros(
            lines, ("dbi", "milc"), digest=digest, cache=cache
        )
        for scheme in ("dbi", "milc"):
            assert second[scheme] is first[scheme]

    def test_unknown_impl_env_rejected(self, monkeypatch):
        monkeypatch.setenv(registry.IMPL_ENV, "cython")
        with pytest.raises(ValueError):
            registry.active_impl()

"""The single source of truth for coding-scheme knowledge.

Before this module existed, scheme knowledge was smeared across seven
layers: codec singletons and an if-chain in ``pipeline.line_zeros``, the
hand-maintained ``BURST_FORMATS`` dict, the ``POLICIES`` tuple plus
``_REAL_SCHEMES`` in ``repro.core.framework``, and ad-hoc lookups in the
controller, config, decision, fuzz, and CLI layers.  Adding one code
meant editing all of them.  Now a codec module declares everything in
one place::

    @register_codec("nzc", burst_length=9, extra_latency=1,
                    layout="line", pins=72,
                    description="(64, 72) near-zero code")
    class NZCCode(CodingScheme):
        ...

and every downstream surface — burst formats, zero-table precompute,
``MiLConfig`` validation, CLI choices, energy accounting — derives its
view from the registry.  ``repro.core.policies`` is the parallel
registry for decision policies.

Entries come in two flavours:

* **codecs** (``register_codec``): a real :class:`CodingScheme` behind
  the name; ``has_codec`` is true, zero tables can be built, and
  :func:`codec_for` returns the (lazily constructed, cached) instance.
* **burst-format-only** entries (``register_burst_format``): a burst
  length with no code occupying it — the Figure 20 ``bl12``/``bl14``
  sweep points, or ``raw`` (which has no codec object but *does* have a
  zero-count path, supplied via ``count_fn``).  Asking these for a
  codec raises :class:`NoCodecError` with a message that names the
  scheme instead of pretending it is unknown.

The ``layout`` field captures the line-vs-beat distinction of
Figure 12: ``"line"`` codecs (DBI, the LWC family) consume bytes in
cache-line order; ``"beat"`` codecs (MiLC, CAFO) operate on the 8x8
squares that appear when the line is rearranged into bus-beat order,
which is where the spatial correlation they exploit lives.

Every codec entry additionally carries a *backend slot*: a mapping from
implementation name (``"reference"`` | ``"numpy"`` | ``"native"``) to a
factory for that implementation.  ``register_codec`` installs the
decorated factory as the entry's default backend; alternative
implementations self-register afterwards::

    @register_backend("dbi", "reference")
    class ReferenceDBI(CodingScheme):
        ...  # per-element Python oracle, bit-identical to the default

The active backend is chosen per process via the ``REPRO_CODEC_IMPL``
environment variable (the CLI's ``--codec-impl`` flag sets it), and a
scheme with no backend registered under the requested name silently
falls back to its default — asking for ``native`` kernels degrades to
``numpy`` rather than failing, exactly like ``HAVE_NATIVE_POPCOUNT``
gating in :mod:`repro.coding.bitops`.  All backends of a scheme must be
bit-identical; the cross-validation suite in
``tests/coding/test_backend_equivalence.py`` enforces it, which is what
lets zero tables (and therefore campaign cache entries) stay
byte-identical no matter which backend produced them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

__all__ = [
    "DEFAULT_IMPL",
    "IMPL_ENV",
    "KNOWN_IMPLS",
    "LINE_BYTES",
    "BurstFormat",
    "CodecInfo",
    "NoCodecError",
    "active_impl",
    "beat_layout",
    "check_lines",
    "codec_for",
    "codec_schemes",
    "real_schemes",
    "register_backend",
    "register_burst_format",
    "register_codec",
    "scheme_info",
    "scheme_items",
    "scheme_names",
    "unregister_backend",
    "unregister_scheme",
]

LINE_BYTES = 64

# Backend (implementation) selection -----------------------------------
#
# ``reference`` — pure-Python, per-element oracle (slow, obviously
#     correct; what the property suites cross-validate against).
# ``numpy``     — the vectorised batched kernels (default).
# ``native``    — reserved for compiled extensions; schemes without one
#     fall back to their default backend automatically.
IMPL_ENV = "REPRO_CODEC_IMPL"
KNOWN_IMPLS = ("reference", "numpy", "native")
DEFAULT_IMPL = "numpy"

# Impl names introduced by third-party ``register_backend`` calls; they
# become valid ``REPRO_CODEC_IMPL`` values alongside KNOWN_IMPLS.
_EXTRA_IMPLS: set[str] = set()


def _validate_impl(impl: str) -> str:
    if impl in KNOWN_IMPLS or impl in _EXTRA_IMPLS:
        return impl
    known = sorted(set(KNOWN_IMPLS) | _EXTRA_IMPLS)
    raise ValueError(
        f"unknown codec impl {impl!r} (from {IMPL_ENV} or --codec-impl); "
        f"known: {known}"
    )


def active_impl() -> str:
    """The backend name selected for this process.

    Reads ``REPRO_CODEC_IMPL`` on every call (so tests can monkeypatch
    it) and validates against the known implementation names; empty or
    unset means :data:`DEFAULT_IMPL`.
    """
    return _validate_impl(os.environ.get(IMPL_ENV, "").strip() or DEFAULT_IMPL)


class NoCodecError(KeyError):
    """A known burst format has no codec registered behind it."""


@dataclass(frozen=True)
class BurstFormat:
    """How one coding scheme occupies the data bus for a 64-byte line.

    Attributes
    ----------
    scheme:
        Short scheme name.
    burst_length:
        Beats per transaction (two beats per DRAM clock).
    extra_latency:
        Codec cycles added to tCL/tWL while this scheme is active.
    """

    scheme: str
    burst_length: int
    extra_latency: int

    @property
    def bus_cycles(self) -> int:
        """DRAM clock cycles of data-bus occupancy (DDR: 2 beats/cycle)."""
        return (self.burst_length + 1) // 2


def check_lines(lines: np.ndarray) -> np.ndarray:
    """Normalise input to ``(n, 64)`` uint8 cache lines."""
    lines = np.asarray(lines, dtype=np.uint8)
    if lines.ndim == 1:
        lines = lines[None, :]
    if lines.shape[-1] != LINE_BYTES:
        raise ValueError(f"expected {LINE_BYTES}-byte lines, got {lines.shape[-1]}")
    return lines


def beat_layout(lines: np.ndarray) -> np.ndarray:
    """Rearrange lines into bus-beat order (Figure 12(a)).

    A x8 rank ships one byte per chip per beat and chip ``j`` stores
    byte ``j`` of every 64-bit word, so beat ``p`` carries byte ``p`` of
    words 0..7 — the same byte position across eight consecutive words.
    MiLC and CAFO operate on those 64-bit beats as 8x8 squares, which is
    exactly where the spatial correlation they exploit lives (adjacent
    doubles share exponent bytes, adjacent ints share zero bytes).
    """
    lines = check_lines(lines)
    n = lines.shape[0]
    return (
        lines.reshape(n, 8, 8).transpose(0, 2, 1).reshape(n, LINE_BYTES)
    )


@dataclass(frozen=True)
class CodecInfo:
    """One registered scheme: burst packing plus (optionally) a codec.

    Attributes
    ----------
    name:
        Short scheme name (``"dbi"``, ``"milc"``, ``"bl12"``).
    burst_length:
        Beats per transaction (two beats per DRAM clock).
    extra_latency:
        Codec cycles folded into tCL/tWL while the scheme is active.
    layout:
        ``"line"`` (codec consumes cache-line byte order) or ``"beat"``
        (codec consumes bus-beat order; see :func:`beat_layout`).
    pins:
        Data pins the coded burst occupies (64, or 72 with the DBI
        pins) — the width side of the ``code_bits <= pins x
        burst_length`` capacity invariant.
    factory:
        Zero-argument callable building the :class:`CodingScheme`
        instance for the *default* backend; ``None`` for
        burst-format-only entries.
    count_fn:
        Optional ``(n, 64) lines -> (n,) zeros`` override used instead
        of a codec (how ``raw`` counts uncoded zeros).
    description:
        One line for ``repro list`` and generated documentation.
    default_impl:
        Backend name the registering module's ``factory`` implements
        (``"numpy"`` for every shipped codec) — also the automatic
        fallback when the requested impl has no registration here.
    backends:
        Mutable impl-name -> factory mapping.  Seeded with
        ``{default_impl: factory}``; :func:`register_backend` adds more.
    """

    name: str
    burst_length: int
    extra_latency: int
    layout: str = "line"
    pins: int = 64
    factory: Optional[Callable] = None
    count_fn: Optional[Callable] = None
    description: str = ""
    default_impl: str = DEFAULT_IMPL
    # Mutable cells so the dataclass can stay frozen (their contents are
    # not part of identity): the backend slot, and per-impl lazily built
    # codec singletons.
    backends: dict = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )
    _cache: dict = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        if self.factory is not None and self.default_impl not in self.backends:
            self.backends[self.default_impl] = self.factory

    @property
    def bus_cycles(self) -> int:
        """DRAM clock cycles of data-bus occupancy (DDR: 2 beats/cycle)."""
        return (self.burst_length + 1) // 2

    @property
    def has_codec(self) -> bool:
        """A zero-count path exists (a codec instance, or ``count_fn``)."""
        return self.factory is not None or self.count_fn is not None

    @property
    def codec(self):
        """The codec instance for the :func:`active_impl` backend.

        Built lazily, once per backend; :class:`NoCodecError` if the
        entry is burst-format-only.
        """
        return self.codec_impl(None)

    def codec_impl(self, impl: Optional[str] = None):
        """The codec instance for a specific backend.

        ``impl=None`` means :func:`active_impl`.  A scheme without a
        registration under the requested impl falls back to its
        ``default_impl`` (so ``native`` degrades to ``numpy`` instead of
        failing); the instance is cached under the *resolved* impl, so
        the fallback shares the default's singleton.
        """
        if self.factory is None:
            raise NoCodecError(
                f"no codec registered for scheme {self.name!r}; it is a "
                "burst-format-only entry"
            )
        impl = _validate_impl(impl) if impl else active_impl()
        resolved = impl if impl in self.backends else self.default_impl
        instance = self._cache.get(resolved)
        if instance is None:
            instance = self.backends[resolved]()
            self._cache[resolved] = instance
        return instance

    def as_burst_format(self) -> BurstFormat:
        """The legacy :class:`BurstFormat` view of this entry."""
        return BurstFormat(self.name, self.burst_length, self.extra_latency)

    def line_zeros(self, lines: np.ndarray) -> np.ndarray:
        """Zeros on the bus per ``(n, 64)`` line under this scheme."""
        lines = check_lines(lines)
        if self.count_fn is not None:
            return self.count_fn(lines)
        if self.factory is None:
            raise NoCodecError(
                f"no codec registered for scheme {self.name!r}; it is a "
                "burst-format-only entry (Figure 20 sweep point)"
            )
        arranged = beat_layout(lines) if self.layout == "beat" else lines
        codec = self.codec
        counter = getattr(codec, "line_zeros", None) or getattr(
            codec, "count_zeros_bytes", None
        )
        if counter is not None:
            # The kernel contract: every CodingScheme inherits a
            # trace-level line_zeros (byte-table fast paths override
            # count_zeros_bytes, which line_zeros dispatches to).
            return counter(arranged)
        # Generic fallback for duck-typed codecs that predate the kernel
        # contract: unpack to bits, count per block, sum per line.
        from .bitops import bytes_to_bits

        bits = bytes_to_bits(arranged)
        blocks = bits.reshape(bits.shape[0], -1, codec.data_bits)
        return codec.count_zeros(blocks).sum(axis=-1, dtype=np.int64)


_REGISTRY: dict[str, CodecInfo] = {}


def register_codec(
    name: str,
    *,
    burst_length: int,
    extra_latency: int,
    layout: str = "line",
    pins: int = 64,
    description: str = "",
    count_fn: Callable | None = None,
):
    """Class/factory decorator registering a codec under ``name``.

    The decorated object must be a zero-argument callable producing a
    :class:`~repro.coding.base.CodingScheme` — the class itself when its
    constructor takes no arguments, or a factory closure for
    parameterised codes (``lambda: CAFOCode(iterations=2)``).  The
    instance is built lazily, once, on first use.
    """
    if layout not in ("line", "beat"):
        raise ValueError(f"layout must be 'line' or 'beat', not {layout!r}")

    def deco(obj):
        _register(CodecInfo(
            name=name,
            burst_length=burst_length,
            extra_latency=extra_latency,
            layout=layout,
            pins=pins,
            factory=obj,
            count_fn=count_fn,
            description=description,
        ))
        return obj

    return deco


def register_burst_format(
    name: str,
    *,
    burst_length: int,
    extra_latency: int,
    pins: int = 64,
    description: str = "",
    count_fn: Callable | None = None,
) -> CodecInfo:
    """Register a codec-less burst format (or a ``count_fn``-only scheme)."""
    info = CodecInfo(
        name=name,
        burst_length=burst_length,
        extra_latency=extra_latency,
        pins=pins,
        count_fn=count_fn,
        description=description,
    )
    _register(info)
    return info


def register_backend(scheme: str, impl: str):
    """Decorator attaching an alternative backend to a registered codec.

    ``impl`` is the implementation name the backend answers to —
    one of :data:`KNOWN_IMPLS`, or a new name (which then becomes a
    valid ``REPRO_CODEC_IMPL`` value).  The decorated object is a
    zero-argument factory (usually the class itself) producing an
    instance that must be *bit-identical* to the scheme's default
    backend on every input; the cross-validation property suite holds it
    to that.  Registration is last-wins (so module reloads are
    harmless) and clears any cached instance for the impl::

        @register_backend("dbi", "reference")
        class ReferenceDBI(CodingScheme):
            ...

    Raises :class:`NoCodecError` when ``scheme`` is burst-format-only
    (there is no default codec to be equivalent to).
    """
    if not impl or not impl.isidentifier():
        raise ValueError(f"impl must be an identifier, got {impl!r}")

    def deco(obj):
        info = scheme_info(scheme)
        if info.factory is None:
            raise NoCodecError(
                f"scheme {scheme!r} is burst-format-only; backends can "
                "only be attached to codec entries"
            )
        info.backends[impl] = obj
        info._cache.pop(impl, None)
        _EXTRA_IMPLS.add(impl)
        return obj

    return deco


def unregister_backend(scheme: str, impl: str) -> None:
    """Detach a backend (tests and interactive experimentation).

    The scheme's default backend cannot be removed — drop the whole
    entry with :func:`unregister_scheme` instead.
    """
    info = scheme_info(scheme)
    if impl == info.default_impl:
        raise ValueError(
            f"{impl!r} is the default backend of {scheme!r}; use "
            "unregister_scheme to drop the entry"
        )
    info.backends.pop(impl, None)
    info._cache.pop(impl, None)


def _register(info: CodecInfo) -> None:
    if info.burst_length < 1:
        raise ValueError(f"{info.name}: burst_length must be positive")
    if info.extra_latency < 0:
        raise ValueError(f"{info.name}: extra_latency must be non-negative")
    existing = _REGISTRY.get(info.name)
    if existing is not None and not _same_registration(existing, info):
        raise ValueError(
            f"coding scheme {info.name!r} is already registered with "
            "different parameters; unregister_scheme() first"
        )
    _REGISTRY[info.name] = info


def _same_registration(a: CodecInfo, b: CodecInfo) -> bool:
    """Idempotent re-registration (module reloads) is tolerated."""
    return (
        a.burst_length == b.burst_length
        and a.extra_latency == b.extra_latency
        and a.layout == b.layout
        and a.pins == b.pins
    )


def unregister_scheme(name: str) -> None:
    """Remove a registration (tests and interactive experimentation)."""
    _REGISTRY.pop(name, None)


def scheme_info(name: str) -> CodecInfo:
    """The registry entry for ``name``; KeyError names the known set."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown coding scheme {name!r}; known: {sorted(_REGISTRY)}"
        ) from None


def codec_for(name: str, impl: Optional[str] = None):
    """The codec instance for ``name`` (optionally a specific backend).

    ``impl=None`` selects the process-wide :func:`active_impl`.  Raises
    ``KeyError`` for unknown names and :class:`NoCodecError` (a
    ``KeyError`` subclass) for registered burst-format-only entries.
    """
    return scheme_info(name).codec_impl(impl)


def scheme_names() -> tuple[str, ...]:
    """Every registered scheme name, in registration order."""
    return tuple(_REGISTRY)


def scheme_items() -> tuple[tuple[str, CodecInfo], ...]:
    """(name, info) pairs in registration order."""
    return tuple(_REGISTRY.items())


def real_schemes() -> tuple[str, ...]:
    """Schemes with a zero-count path (codec or ``count_fn``).

    These are the schemes :func:`~repro.coding.pipeline.precompute_line_zeros`
    can build tables for — what the energy model and the write
    optimization consume.
    """
    return tuple(n for n, i in _REGISTRY.items() if i.has_codec)


def codec_schemes() -> tuple[str, ...]:
    """Schemes backed by an actual :class:`CodingScheme` instance."""
    return tuple(n for n, i in _REGISTRY.items() if i.factory is not None)

"""TraceBuffer: bounded ring semantics and event ordering."""

import pytest

from repro.telemetry import TraceBuffer, TraceEvent


def _evt(i: int) -> TraceEvent:
    return TraceEvent(name=f"e{i}", category="test", phase="i", ts=float(i))


class TestTraceBuffer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            TraceBuffer(0)

    def test_under_capacity_keeps_everything_in_order(self):
        buf = TraceBuffer(capacity=8)
        for i in range(5):
            buf.append(_evt(i))
        assert len(buf) == 5
        assert buf.dropped == 0
        assert [e.name for e in buf] == ["e0", "e1", "e2", "e3", "e4"]

    def test_overflow_drops_oldest_and_counts(self):
        buf = TraceBuffer(capacity=4)
        for i in range(10):
            buf.append(_evt(i))
        assert len(buf) == 4
        assert buf.dropped == 6
        # The tail of the run survives, oldest-first.
        assert [e.name for e in buf] == ["e6", "e7", "e8", "e9"]

    def test_emit_builds_the_event(self):
        buf = TraceBuffer(capacity=4)
        buf.emit("burst", "bus.read", "X", ts=100.0, dur=4.0,
                 track="ch0", args=(("scheme", "milc"),))
        event = buf.events()[0]
        assert event.name == "burst"
        assert event.phase == "X"
        assert event.dur == 4.0
        assert event.track == "ch0"
        assert event.args_dict() == {"scheme": "milc"}

    def test_exactly_full_iterates_in_order(self):
        buf = TraceBuffer(capacity=3)
        for i in range(3):
            buf.append(_evt(i))
        assert [e.name for e in buf] == ["e0", "e1", "e2"]
        assert buf.dropped == 0

"""Content-addressed on-disk cache of run summaries.

Each cached file is named ``<slug>-<digest>.json`` where the digest
hashes the spec's canonical encoding together with the model source
fingerprint — no manual version bumps, no way for an edited model to
silently serve stale numbers.  Files hold the summary plus a ``meta``
block (timing metadata); the ``summary`` block is serialised with
sorted keys, so a cold serial campaign and a cold parallel one produce
byte-identical payloads modulo ``meta``.

``REPRO_NO_CACHE=1`` disables both the read and the write path;
``REPRO_CACHE_DIR`` relocates the cache.  Corrupt or truncated files
are treated as misses (and removed) rather than crashes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..core.framework import RunSummary
from .fingerprint import model_fingerprint
from .spec import RunSpec

__all__ = [
    "cache_dir",
    "cache_enabled",
    "cache_key",
    "cache_path",
    "load",
    "store",
]

CACHE_FORMAT = 1


def cache_dir() -> Path:
    """Directory holding cached run summaries (not created until write)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return Path(root)
    return Path(__file__).resolve().parents[3] / ".cache" / "runs"


def cache_enabled() -> bool:
    return not os.environ.get("REPRO_NO_CACHE")


def cache_key(spec: RunSpec, fingerprint: str | None = None) -> str:
    """Stable content-addressed key: human slug + spec/model digest."""
    import hashlib

    fp = fingerprint if fingerprint is not None else model_fingerprint()
    digest = hashlib.sha256(
        (spec.canonical_json() + "\0" + fp).encode()
    ).hexdigest()[:12]
    return f"{spec.slug}-{digest}"


def cache_path(spec: RunSpec, fingerprint: str | None = None) -> Path:
    return cache_dir() / f"{cache_key(spec, fingerprint)}.json"


def load(spec: RunSpec, fingerprint: str | None = None) -> RunSummary | None:
    """Return the cached summary for ``spec``, or ``None`` on a miss.

    A corrupt, truncated, or schema-incompatible file is removed and
    reported as a miss so the run is simply recomputed.
    """
    if not cache_enabled():
        return None
    path = cache_path(spec, fingerprint)
    try:
        payload = json.loads(path.read_text())
    except OSError:
        return None  # plain miss
    except (json.JSONDecodeError, UnicodeDecodeError, ValueError):
        path.unlink(missing_ok=True)
        return None
    try:
        summary = RunSummary.from_dict(payload["summary"])
    except (KeyError, TypeError, AttributeError):
        path.unlink(missing_ok=True)
        return None
    meta = payload.get("meta", {})
    summary.stats = {
        "wall_s": meta.get("wall_s"),
        "cache_hit": True,
    }
    return summary


def store(
    spec: RunSpec,
    summary: RunSummary,
    wall_s: float | None = None,
    fingerprint: str | None = None,
) -> Path | None:
    """Write ``summary`` for ``spec``; returns the path (None if disabled).

    The directory is created at write time; the write is atomic
    (temp file + rename) so concurrent campaigns and a killed run can
    never leave a torn file behind.  Per-run timing lives in ``meta``,
    outside the deterministic ``summary`` block.
    """
    if not cache_enabled():
        return None
    path = cache_path(spec, fingerprint)
    path.parent.mkdir(parents=True, exist_ok=True)
    body = summary.to_dict()
    body.pop("stats", None)  # timing metadata is not part of the result
    payload = {
        "format": CACHE_FORMAT,
        "fingerprint": (
            fingerprint if fingerprint is not None else model_fingerprint()
        ),
        "spec": spec.canonical(),
        "meta": {"wall_s": wall_s},
        "summary": body,
    }
    tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
    tmp.write_text(json.dumps(payload, sort_keys=True))
    os.replace(tmp, path)
    return path

"""Benchmark target: Figure 5 pending cycle split.

Regenerates the paper's fig05 rows (see DESIGN.md experiment index).
pytest-benchmark reports the wall time of the (cached) experiment; the
printed table is the reproduced result.
"""

from repro.experiments.fig05_pending import run_experiment


def test_fig05(benchmark, show):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    show(result)
    assert result.rows, "experiment produced no rows"

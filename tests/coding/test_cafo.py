"""Tests for the CAFO comparison scheme."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.coding import CAFOCode
from repro.coding.bitops import zeros_in_bits

blocks64 = arrays(np.uint8, (64,), elements=st.integers(min_value=0, max_value=1))


class TestRoundTrip:
    @settings(max_examples=150)
    @given(blocks64, st.sampled_from([1, 2, 4, None]))
    def test_round_trip(self, block, iterations):
        code = CAFOCode(iterations=iterations)
        decoded = code.decode(code.encode(block[None, :]))
        assert (decoded[0] == block).all()

    def test_round_trip_batch(self):
        rng = np.random.default_rng(10)
        blocks = rng.integers(0, 2, size=(300, 64), dtype=np.uint8)
        for iters in (2, 4, None):
            code = CAFOCode(iterations=iters)
            assert (code.decode(code.encode(blocks)) == blocks).all()


class TestObjective:
    @settings(max_examples=100)
    @given(blocks64)
    def test_count_matches_encode(self, block):
        for iters in (2, 4):
            code = CAFOCode(iterations=iters)
            assert (
                code.count_zeros(block[None, :])[0]
                == zeros_in_bits(code.encode(block[None, :]))[0]
            )

    @settings(max_examples=100)
    @given(blocks64)
    def test_more_iterations_never_hurt(self, block):
        # Each greedy half-pass only applies strictly improving flips,
        # so CAFO4 <= CAFO2 <= no-coding in transmitted zeros.
        b = block[None, :]
        z2 = CAFOCode(iterations=2).count_zeros(b)[0]
        z4 = CAFOCode(iterations=4).count_zeros(b)[0]
        zfull = CAFOCode(iterations=None).count_zeros(b)[0]
        raw = 64 - int(block.sum())
        assert z4 <= z2 <= raw + 16  # flags all-ones when untouched
        assert zfull <= z4

    def test_converged_variant_is_fixed_point(self):
        # Running the convergent solver twice changes nothing.
        rng = np.random.default_rng(11)
        blocks = rng.integers(0, 2, size=(50, 64), dtype=np.uint8)
        code = CAFOCode(iterations=None)
        first = code.count_zeros(blocks)
        again = code.count_zeros(blocks)
        assert (first == again).all()

    def test_all_zero_block(self):
        # Rows all flip; flags cost 8 zeros — the DBI-equivalent floor.
        block = np.zeros((1, 64), dtype=np.uint8)
        assert CAFOCode(iterations=2).count_zeros(block)[0] == 8


class TestConfiguration:
    def test_latency_charging(self):
        assert CAFOCode(iterations=2).extra_latency_cycles == 2
        assert CAFOCode(iterations=4).extra_latency_cycles == 4

    def test_names(self):
        assert CAFOCode(iterations=2).name == "cafo2"
        assert CAFOCode(iterations=None).name == "cafo"

    def test_rejects_bad_iterations(self):
        with pytest.raises(ValueError):
            CAFOCode(iterations=0)

"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for expected in ("GUPS", "ddr4-server", "lpddr3-mobile", "mil",
                         "fig16", "table4"):
            assert expected in out


class TestRun:
    def test_run_prints_summary(self, capsys):
        assert main(["run", "MM", "--scale", "600"]) == 0
        out = capsys.readouterr().out
        assert "MM on ddr4-server" in out
        assert "zeros on bus" in out

    def test_run_with_baseline_comparison(self, capsys):
        assert main([
            "run", "mm", "--scale", "600", "--policy", "milc", "--baseline",
        ]) == 0
        out = capsys.readouterr().out
        assert "vs DBI: zeros" in out

    def test_unknown_system_exits(self):
        with pytest.raises(SystemExit):
            main(["run", "MM", "--system", "pdp11"])

    def test_unknown_policy_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["run", "MM", "--policy", "huffman"])


class TestExperiment:
    def test_analytic_experiment(self, capsys):
        assert main(["experiment", "table4"]) == 0
        out = capsys.readouterr().out
        assert "milc-enc" in out

    def test_unknown_experiment_exits(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestTrace:
    def test_trace_dump_and_audit(self, tmp_path, capsys):
        out = tmp_path / "bus.csv"
        assert main([
            "trace", "MM", str(out), "--scale", "600", "--policy", "milc",
        ]) == 0
        text = capsys.readouterr().out
        assert "audit: clean" in text
        assert (tmp_path / "bus.ch0.csv").exists()
        assert (tmp_path / "bus.ch1.csv").exists()

    def test_trace_jsonl_format(self, tmp_path, capsys):
        out = tmp_path / "bus.jsonl"
        assert main(["trace", "MM", str(out), "--scale", "600"]) == 0
        assert (tmp_path / "bus.ch0.jsonl").exists()

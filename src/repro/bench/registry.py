"""Declarative benchmark registry (decorator-based, like pytest collection).

A benchmark is a *factory*: a zero-argument callable that performs all
setup (building corpora, constructing channels, opening rows) and
returns the zero-argument thunk the timing protocol will measure.
Setup cost therefore never pollutes the numbers, and registering a
benchmark costs nothing until it is actually run.

Registration happens at import time of :mod:`repro.bench.suite`;
:func:`collect` triggers that import exactly once, so CLI listing, test
collection, and programmatic use all see the same registry.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["BenchError", "BenchmarkDef", "REGISTRY", "benchmark",
           "collect", "get", "select"]


class BenchError(RuntimeError):
    """A benchmark could not be registered, found, or executed."""


@dataclass(frozen=True)
class BenchmarkDef:
    """One registered benchmark.

    Attributes
    ----------
    name:
        Dotted identifier, e.g. ``coding.line_zeros.milc``.  Unique.
    factory:
        Zero-argument setup callable returning the thunk to measure.
    params:
        Workload parameters recorded verbatim in the results JSON
        (corpus size, scheme name, ...), so a baseline comparison can
        refuse to compare apples to oranges.
    smoke:
        Part of the quick subset (``repro bench --smoke``, CI).
    inner_ops:
        Logical operations one thunk call performs (e.g. lines
        processed); ``ns_per_op`` is normalised by it.
    description:
        One line for ``repro bench --list``.
    """

    name: str
    factory: Callable[[], Callable[[], Any]]
    params: dict = field(default_factory=dict)
    smoke: bool = False
    inner_ops: int = 1
    description: str = ""

    def build(self) -> Callable[[], Any]:
        """Run setup and hand back the measurable thunk."""
        thunk = self.factory()
        if not callable(thunk):
            raise BenchError(
                f"benchmark {self.name!r}: factory returned "
                f"{type(thunk).__name__}, not a callable thunk"
            )
        return thunk


REGISTRY: dict[str, BenchmarkDef] = {}


def benchmark(
    name: str,
    *,
    params: dict | None = None,
    smoke: bool = False,
    inner_ops: int = 1,
    description: str = "",
):
    """Decorator registering a benchmark factory under ``name``.

    ::

        @benchmark("coding.line_zeros.milc", smoke=True,
                   params={"lines": 2048}, inner_ops=2048)
        def _milc():
            lines = corpus.lines(2048)
            return lambda: line_zeros("milc", lines)
    """
    if inner_ops < 1:
        raise BenchError(f"benchmark {name!r}: inner_ops must be >= 1")

    def register(factory: Callable[[], Callable[[], Any]]) -> Callable:
        if name in REGISTRY:
            raise BenchError(f"duplicate benchmark name {name!r}")
        REGISTRY[name] = BenchmarkDef(
            name=name,
            factory=factory,
            params=dict(params or {}),
            smoke=smoke,
            inner_ops=inner_ops,
            description=description or (factory.__doc__ or "").strip(),
        )
        return factory

    return register


_collected = False


def collect() -> dict[str, BenchmarkDef]:
    """Import the benchmark suite (once) and return the registry."""
    global _collected
    if not _collected:
        from . import suite  # noqa: F401  (imports register benchmarks)

        _collected = True
    return REGISTRY


def get(name: str) -> BenchmarkDef:
    """Look up one collected benchmark by exact name."""
    reg = collect()
    try:
        return reg[name]
    except KeyError:
        raise BenchError(
            f"unknown benchmark {name!r}; run `repro bench --list`"
        ) from None


def select(
    pattern: str | None = None, smoke_only: bool = False
) -> list[BenchmarkDef]:
    """Collected benchmarks matching ``pattern``, in registration order.

    ``pattern`` matches like pytest's ``-k``: a plain substring, or a
    glob when it contains ``*``/``?``/``[``.
    """
    defs = list(collect().values())
    if smoke_only:
        defs = [d for d in defs if d.smoke]
    if pattern:
        if any(c in pattern for c in "*?["):
            defs = [d for d in defs if fnmatch.fnmatch(d.name, pattern)]
        else:
            defs = [d for d in defs if pattern in d.name]
    return defs

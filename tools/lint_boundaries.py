#!/usr/bin/env python
"""Boundary lint: the coding registry is the only sanctioned surface.

``BURST_FORMATS`` and ``_SCHEMES`` are backward-compatibility views kept
inside ``repro.coding``; modules elsewhere in the package must go
through :mod:`repro.coding.registry` (``scheme_info``, ``real_schemes``,
...) so that scheme knowledge cannot fragment again.  This linter walks
every module under ``src/repro`` outside ``repro/coding`` and flags:

* ``from ...coding.pipeline import BURST_FORMATS`` (any coding module,
  any of the legacy names),
* attribute access spelling one of the legacy names on an imported
  module (``pipeline.BURST_FORMATS``), and
* importing a concrete *registered* codec class (``DBICode``,
  ``MiLCCode``, ...) from any coding module — consumers must resolve
  codecs through the registry (``codec_for``/``scheme_info``) so that
  backend selection (``REPRO_CODEC_IMPL``) and singleton caching are
  never bypassed.

Unregistered analysis/helper classes (``OptimalStaticLWC``,
``BusInvertCode``, ``TransitionSignaling``) stay importable: they have
no registry entry to go through.

A module defining its *own* local name (e.g. an experiment's private
``_SCHEMES`` tuple of strings) is fine — the lint only polices imports
from ``repro.coding``.

Two further ownership boundaries from the event-core rebuild (see
DESIGN.md, "Event core"):

* ``repro.system.events`` (the cross-channel ``EventQueue``) is
  internal to ``repro.system`` — no module outside that package may
  import it, by any spelling;
* the controller's scheduling internals (``_candidates``,
  ``_assemble_candidates``, ``_schedule_query``,
  ``_derive_bank_candidate``, ``_bank_memo_rd``, ``_bank_memo_wr``)
  are internal to ``repro.controller`` — outside it, only the public
  ``step`` / ``next_event`` / ``sync`` surface exists.

Run from the repository root (CI does)::

    python tools/lint_boundaries.py
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

LEGACY_NAMES = frozenset({"BURST_FORMATS", "_SCHEMES"})
# Concrete classes with registry entries (including reference backends);
# everything outside repro.coding must reach them via codec_for().
CODEC_CLASS_NAMES = frozenset({
    "DBICode",
    "MiLCCode",
    "ThreeLWC",
    "CAFOCode",
    "KLimitedWeightCode",
    "PerfectThreeLWC",
    "ReferenceDBI",
    "ReferenceThreeLWC",
    "ReferenceMiLC",
    "ReferenceCAFO",
    "ReferenceKLWC",
})
SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"
EXEMPT = "coding"  # the package that owns (and may use) the legacy views
# Controller scheduling internals: the incremental candidate cache and
# the fused (pick, wake) query.  Only repro.controller may touch them.
CONTROLLER_INTERNALS = frozenset({
    "_candidates",
    "_assemble_candidates",
    "_schedule_query",
    "_derive_bank_candidate",
    "_bank_memo_rd",
    "_bank_memo_wr",
})
# The event heap's owning package; repro.system.events may not be
# imported from anywhere else.
EVENTS_OWNER = "system"


def _is_system_events_module(module: str) -> bool:
    """True for any spelling of the ``repro.system.events`` module."""
    parts = module.split(".")
    for i, part in enumerate(parts[:-1]):
        if part == "system" and parts[i + 1] == "events":
            return True
    return False


def _is_coding_module(module: str) -> bool:
    """True for ``repro.coding`` / ``..coding.pipeline`` style modules."""
    parts = module.split(".")
    return "coding" in parts


def check_source(source: str, filename: str, package: str = "") -> list[str]:
    """Return ``file:line: message`` strings for every violation.

    ``package`` is the module's first-level subpackage under ``repro``
    (e.g. ``"system"``), used to exempt a boundary's owning package
    from its own rule.
    """
    problems = []
    tree = ast.parse(source, filename=filename)
    coding_aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if package != EVENTS_OWNER:
                if _is_system_events_module(module) or (
                    module.split(".")[-1:] == [EVENTS_OWNER]
                    and any(a.name == "events" for a in node.names)
                ):
                    problems.append(
                        f"{filename}:{node.lineno}: imports the event "
                        "heap (repro.system.events); it is internal to "
                        "repro.system.simulator"
                    )
            if package != "controller":
                for alias in node.names:
                    if alias.name in CONTROLLER_INTERNALS:
                        problems.append(
                            f"{filename}:{node.lineno}: imports "
                            f"controller internal {alias.name}; use the "
                            "public step/next_event/sync surface"
                        )
            if not (_is_coding_module(module) or node.level and not module):
                continue
            for alias in node.names:
                if alias.name in LEGACY_NAMES and _is_coding_module(module):
                    problems.append(
                        f"{filename}:{node.lineno}: imports {alias.name} "
                        f"from {module!r}; use repro.coding.registry"
                    )
                if (
                    alias.name in CODEC_CLASS_NAMES
                    and _is_coding_module(module)
                ):
                    problems.append(
                        f"{filename}:{node.lineno}: imports codec class "
                        f"{alias.name} from {module!r}; resolve codecs "
                        "through repro.coding.registry (codec_for)"
                    )
                # Track `from .. import coding` / submodule aliases so
                # attribute spellings can be attributed to them.
                if _is_coding_module(module) or alias.name == "coding":
                    coding_aliases.add(alias.asname or alias.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if (
                    package != EVENTS_OWNER
                    and _is_system_events_module(alias.name)
                ):
                    problems.append(
                        f"{filename}:{node.lineno}: imports the event "
                        "heap (repro.system.events); it is internal to "
                        "repro.system.simulator"
                    )
                if _is_coding_module(alias.name):
                    coding_aliases.add(
                        alias.asname or alias.name.split(".")[0]
                    )
        elif isinstance(node, ast.Attribute):
            if node.attr in LEGACY_NAMES:
                problems.append(
                    f"{filename}:{node.lineno}: accesses .{node.attr}; "
                    "use repro.coding.registry"
                )
            elif (
                node.attr in CONTROLLER_INTERNALS
                and package != "controller"
            ):
                problems.append(
                    f"{filename}:{node.lineno}: accesses controller "
                    f"internal .{node.attr}; use the public "
                    "step/next_event/sync surface"
                )
    return problems


def check_tree(root: Path = SRC_ROOT) -> list[str]:
    problems = []
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root)
        if rel.parts and rel.parts[0] == EXEMPT:
            continue
        package = rel.parts[0] if len(rel.parts) > 1 else ""
        problems.extend(
            check_source(
                path.read_text(encoding="utf-8"), str(path), package
            )
        )
    return problems


def main() -> int:
    problems = check_tree()
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(
            f"boundary lint: {len(problems)} violation(s); scheme "
            "knowledge belongs behind repro.coding.registry",
            file=sys.stderr,
        )
        return 1
    print("boundary lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""CampaignService in-process: scheduling, retries, shard death, sweep.

These tests drive the async service directly under ``asyncio.run`` —
no HTTP — with ``shards=0`` (inline execution) unless a test is
explicitly about worker processes.  The service pins
``REPRO_CACHE_DIR`` while running and restores it on ``stop()``, so
each test's store lives under its own ``tmp_path``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.campaign import RunSpec, cache
from repro.campaign.runner import FAIL_ONCE_ENV, KILL_ONCE_ENV
from repro.serve.service import CampaignService, ServiceConfig

SCALE = 80
FP = "test-fp"


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.delenv(FAIL_ONCE_ENV, raising=False)
    monkeypatch.delenv(KILL_ONCE_ENV, raising=False)


def spec(seed: int, policy: str = "dbi") -> RunSpec:
    return RunSpec(benchmark="GUPS", system="ddr4-server", policy=policy,
                   accesses_per_core=SCALE, seed=seed)


def config(tmp_path, **kw) -> ServiceConfig:
    kw.setdefault("store_root", tmp_path / "store")
    kw.setdefault("shards", 0)
    kw.setdefault("fingerprint", FP)
    kw.setdefault("backoff_base_s", 0.01)
    return ServiceConfig(**kw)


async def wait_terminal(job, timeout: float = 120.0) -> None:
    """Block until the job's event log closes (terminal state)."""

    async def _drain():
        async for _event in job.log.subscribe():
            pass

    await asyncio.wait_for(_drain(), timeout)


def with_service(cfg, body):
    """asyncio.run a coroutine with a started service, always stopping."""

    async def _main():
        service = CampaignService(cfg)
        await service.start()
        try:
            return await body(service)
        finally:
            await service.stop()

    return asyncio.run(_main())


def test_execute_then_cache_hit(tmp_path):
    specs = [spec(1), spec(2)]

    async def body(service):
        job = service.submit_specs(specs, namespace="t")
        await wait_terminal(job)
        assert job.state == "done"
        assert job.counters["executed"] == 2
        rows = service.result_rows(job.id)
        assert [r["cache_key"] for r in rows] == job.keys
        assert all(r["summary"] for r in rows)
        # Resubmission is pure cache: nothing executes again.
        again = service.submit_specs(specs, namespace="t")
        assert again.state == "done"
        assert again.counters["cache_hits"] == 2
        assert service.counters["executed"] == 2
        # The store indexed both submissions under the namespace.
        assert set(service.store.keys("t")) == set(job.keys)
        return service.stats()

    stats = with_service(config(tmp_path), body)
    assert stats["manager"]["finished"] == 2
    assert stats["queue_depth"] == 0 and stats["inflight"] == 0


def test_retry_with_backoff_recovers(tmp_path, monkeypatch):
    monkeypatch.setenv(FAIL_ONCE_ENV, str(tmp_path / "fail-once"))

    async def body(service):
        job = service.submit_specs([spec(3)])
        await wait_terminal(job)
        return job

    job = with_service(config(tmp_path, retries=2), body)
    assert job.state == "done"
    assert job.counters["retries"] == 1
    assert (tmp_path / "fail-once").exists()


def test_retries_exhausted_fails_job(tmp_path, monkeypatch):
    # retries=0 means the single injected failure exhausts the budget.
    monkeypatch.setenv(FAIL_ONCE_ENV, str(tmp_path / "f0"))

    async def body(service):
        job = service.submit_specs([spec(4)])
        await wait_terminal(job)
        return job

    job = with_service(config(tmp_path, retries=0), body)
    assert job.state == "failed"
    assert job.counters["failed"] == 1
    assert "injected" in job.error or "failed" in job.error


def test_pause_coalesces_duplicate_submissions(tmp_path):
    specs = [spec(5), spec(6)]

    async def body(service):
        service.pause()
        first = service.submit_specs(specs, namespace="a")
        second = service.submit_specs(specs, namespace="b")
        assert second.counters["coalesced"] == 2
        assert service.manager.queue_depth == 2  # two units, four waiters
        service.resume()
        await wait_terminal(first)
        await wait_terminal(second)
        assert first.state == second.state == "done"
        # The two jobs settled from TWO executions, not four.
        assert service.counters["executed"] == 2
        assert first.counters["executed"] == 2
        assert second.counters["executed"] == 2
        # Both tenants pin the same keys in the store.
        assert service.store.keys("a") == service.store.keys("b")

    with_service(config(tmp_path), body)


def test_shard_death_releases_lease_and_respawns(tmp_path, monkeypatch):
    """SIGKILLing a shard mid-run must not strand its RunSpec."""
    monkeypatch.setenv(KILL_ONCE_ENV, str(tmp_path / "kill-once"))
    specs = [spec(s) for s in range(7, 10)]

    async def body(service):
        job = service.submit_specs(specs)
        await wait_terminal(job)
        return job, service.stats()

    job, stats = with_service(
        config(tmp_path, shards=2, retries=2), body
    )
    assert job.state == "done"
    assert job.counters["executed"] == len(specs)
    assert (tmp_path / "kill-once").exists()
    assert stats["service"]["died"] == 1
    assert stats["respawns"] == 1
    assert job.counters["retries"] >= 1


def test_idle_sweep_enforces_quota(tmp_path):
    specs = [spec(s) for s in range(11, 14)]

    async def body(service):
        job = service.submit_specs(specs, namespace="small")
        await wait_terminal(job)
        return job

    job = with_service(config(tmp_path, quotas={"small": 1}), body)
    assert job.state == "done"
    store_runs = tmp_path / "store" / "runs"
    kept = {p.stem for p in store_runs.glob("*.json")}
    # The sweep ran at idle: only the quota's worth of results survive.
    assert len(kept) == 1
    assert kept < set(job.keys)


def test_cancel_mid_backoff_clears_attempts(tmp_path):
    """Regression: ``_attempts[key]`` leaked when every waiter cancelled
    while the key sat in retry backoff — the eventual release dropped
    the unit from the manager but the service kept the counter."""

    async def body(service):
        service.pause()
        job = service.submit_specs([spec(30)])
        key, sp = service.manager.next_work()  # lease it ourselves
        service._on_result(key, sp, ("err", "injected"))  # -> backoff
        assert service._attempts == {key: 1}
        service.cancel(job.id)  # last waiter gone, lease still out
        # The backoff fires, release() finds no live waiters, drops the
        # unit, and on_drop clears the retry bookkeeping.
        for _ in range(100):
            if not service._attempts:
                break
            await asyncio.sleep(0.01)
        assert service._attempts == {}
        assert service.manager._waiters == {}
        assert service.manager._spec_by_key == {}
        assert service.manager.outstanding == 0

    with_service(config(tmp_path, retries=5), body)


def test_store_seq_write_is_atomic(tmp_path):
    """The seq file gets tmp+rename like the tenant indexes: no
    ``seq.tmp*`` residue and always a parseable integer."""

    async def body(service):
        job = service.submit_specs([spec(31)], namespace="t")
        await wait_terminal(job)

    with_service(config(tmp_path), body)
    store_root = tmp_path / "store"
    assert not list(store_root.glob("seq.tmp*"))
    assert int((store_root / "seq").read_text()) >= 1


def test_service_probe_records(tmp_path):
    from repro.telemetry import TelemetrySession

    session = TelemetrySession(label="serve-test", time_unit="seconds")

    async def _main():
        service = CampaignService(config(tmp_path), telemetry=session)
        await service.start()
        try:
            job = service.submit_specs([spec(40)])
            await wait_terminal(job)
            job2 = service.submit_specs([spec(40)])  # pure cache hit
            assert job2.state == "done"
        finally:
            await service.stop()

    asyncio.run(_main())
    metrics = session.registry.as_dict()
    assert metrics["serve.jobs.submitted"]["value"] == 2
    assert metrics["serve.lease.ok"]["value"] == 1
    assert metrics["serve.specs.cache_hits"]["value"] == 1
    assert metrics["serve.queue.depth"]["value"] == 0
    assert metrics["serve.workers.connected"]["value"] == 0


def test_payload_validation():
    from repro.serve.service import payload_specs

    with pytest.raises(ValueError):
        payload_specs({"kind": "nope"})
    with pytest.raises(ValueError):
        payload_specs({"kind": "specs", "specs": []})
    with pytest.raises(ValueError):
        payload_specs({"kind": "specs", "specs": [{"bogus_field": 1}]})
    with pytest.raises(ValueError):
        payload_specs({"kind": "scenario", "scenario": "not-a-dict"})
    decoded = payload_specs(
        {"kind": "specs", "specs": [spec(1).canonical()]}
    )
    assert decoded == [spec(1)]

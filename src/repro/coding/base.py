"""Common interface for all coding schemes in the MiL framework.

A :class:`CodingScheme` maps fixed-size blocks of data bits to fixed-size
codewords.  The MiL framework (Section 4.3 of the paper) only admits
codes with a *deterministic* latency and codeword length, because the
memory controller must know, at scheduling time, exactly how many extra
data-bus cycles a coded burst will occupy.  That constraint is captured
here by ``data_bits``/``code_bits`` being class-level constants.

Three views of each code are provided:

* ``encode_blocks`` / ``decode_blocks`` — the real bit-level transform,
  used by round-trip tests and by anything that needs actual codewords.
* ``count_zeros`` — a (usually much faster) vectorised path that returns
  only the number of 0s each encoded block would put on the bus, which is
  all the energy model needs.  The default implementation derives it from
  ``encode_blocks``; subclasses override it with lookup tables.
* ``encode_lines`` / ``line_zeros`` / ``count_zeros_bytes`` — the
  *batched kernel contract*: whole traces enter as ``(n_lines, k)``
  uint8 byte arrays (64-byte cache lines in practice) and are encoded
  or costed in one vectorised shot, without ever dropping into
  per-element Python.  The defaults here derive everything from
  ``encode_blocks``/``count_zeros``, so a minimal codec (or a
  pure-Python reference backend) is automatically trace-capable;
  production codecs override ``count_zeros_bytes`` with byte-table
  kernels that never unpack to bits at all.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .bitops import bytes_to_bits, zeros_in_bits

__all__ = ["CodingScheme", "BlockShapeError"]


class BlockShapeError(ValueError):
    """Raised when input data is not shaped as whole coding blocks."""


class CodingScheme(ABC):
    """Abstract base for deterministic-latency block codes.

    Attributes
    ----------
    name:
        Short identifier used in experiment tables (``"dbi"``, ``"milc"``).
    data_bits:
        Number of data bits consumed per block.
    code_bits:
        Number of code bits produced per block.
    extra_latency_cycles:
        Codec latency in DRAM cycles added to tCL/tWL when this scheme is
        in use (Section 4.4: one cycle for DBI/MiLC/3-LWC; k for CAFO-k).
    """

    name: str = "abstract"
    data_bits: int = 0
    code_bits: int = 0
    extra_latency_cycles: int = 0

    # ------------------------------------------------------------------
    # Core transform
    # ------------------------------------------------------------------
    @abstractmethod
    def encode_blocks(self, data_bits: np.ndarray) -> np.ndarray:
        """Encode blocks of shape ``(..., data_bits)`` to ``(..., code_bits)``."""

    @abstractmethod
    def decode_blocks(self, code_bits: np.ndarray) -> np.ndarray:
        """Invert :meth:`encode_blocks`."""

    # ------------------------------------------------------------------
    # Convenience wrappers
    # ------------------------------------------------------------------
    def _check_shape(self, bits: np.ndarray, expected: int, what: str) -> np.ndarray:
        bits = np.asarray(bits, dtype=np.uint8)
        if bits.shape[-1] != expected:
            raise BlockShapeError(
                f"{self.name}: {what} trailing axis must be {expected} bits, "
                f"got {bits.shape[-1]}"
            )
        if bits.size and bits.max() > 1:
            raise BlockShapeError(f"{self.name}: {what} is not a 0/1 bit array")
        return bits

    def encode(self, data_bits: np.ndarray) -> np.ndarray:
        """Validate shape, then encode."""
        return self.encode_blocks(self._check_shape(data_bits, self.data_bits, "data"))

    def decode(self, code_bits: np.ndarray) -> np.ndarray:
        """Validate shape, then decode."""
        return self.decode_blocks(self._check_shape(code_bits, self.code_bits, "code"))

    def count_zeros(self, data_bits: np.ndarray) -> np.ndarray:
        """Number of 0s on the bus for each encoded block.

        Shape ``(..., data_bits)`` in, shape ``(...)`` out.  Subclasses
        with cheap closed forms (per-byte lookup tables) override this.
        """
        return zeros_in_bits(self.encode(data_bits))

    # ------------------------------------------------------------------
    # Batched kernel contract (trace-level, byte-domain)
    # ------------------------------------------------------------------
    def _check_lines(self, lines: np.ndarray) -> np.ndarray:
        lines = np.asarray(lines, dtype=np.uint8)
        if lines.ndim == 1:
            lines = lines[None, :]
        if lines.ndim != 2:
            raise BlockShapeError(
                f"{self.name}: expected (n_lines, bytes), got shape "
                f"{lines.shape}"
            )
        if (lines.shape[-1] * 8) % self.data_bits != 0:
            raise BlockShapeError(
                f"{self.name}: {lines.shape[-1]} bytes per line is not a "
                f"whole number of {self.data_bits}-bit blocks"
            )
        return lines

    def encode_lines(self, lines: np.ndarray) -> np.ndarray:
        """Encode a whole trace of byte rows in one vectorised shot.

        ``(n_lines, k)`` uint8 *bytes* in (``k = 64`` for cache lines),
        ``(n_lines, blocks * code_bits)`` uint8 *bits* out — every
        codeword of every line, concatenated in transmission order.
        The default splits each row into ``data_bits``-bit blocks and
        defers to :meth:`encode_blocks`, which all shipped codecs
        implement as whole-array kernels, so no per-line Python runs.
        """
        lines = self._check_lines(lines)
        bits = bytes_to_bits(lines)
        blocks = bits.reshape(lines.shape[0], -1, self.data_bits)
        coded = self.encode_blocks(blocks)
        return coded.reshape(lines.shape[0], -1)

    def count_zeros_bytes(self, data: np.ndarray) -> np.ndarray:
        """Zeros on the bus per row of a ``(..., k)`` uint8 byte array.

        The byte-domain hot path the zero-table precompute runs on.
        The default unpacks to bits and sums :meth:`count_zeros` per
        block; production codecs override it with byte-indexed lookup
        tables that never materialise a bit array.
        """
        data = np.asarray(data, dtype=np.uint8)
        bits = bytes_to_bits(data)
        blocks = bits.reshape(bits.shape[:-1] + (-1, self.data_bits))
        return self.count_zeros(blocks).sum(axis=-1, dtype=np.int64)

    def line_zeros(self, lines: np.ndarray) -> np.ndarray:
        """Zeros per line for ``(n_lines, k)`` byte rows (kernel alias).

        Canonical kernel-contract name; dispatches to
        :meth:`count_zeros_bytes` so codecs that already ship a fast
        byte-table counter serve the trace path automatically.  Note the
        registry applies the beat/line layout *before* calling this.
        """
        return self.count_zeros_bytes(self._check_lines(lines))

    # ------------------------------------------------------------------
    # Derived properties
    # ------------------------------------------------------------------
    @property
    def expansion(self) -> float:
        """Bandwidth overhead factor (code bits per data bit)."""
        return self.code_bits / self.data_bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name}: "
            f"({self.data_bits},{self.code_bits})>"
        )

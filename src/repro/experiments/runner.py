"""Shared experiment infrastructure, built on :mod:`repro.campaign`.

Figures 16-19 and 22 all consume the same 110 simulation runs
(2 systems x 11 benchmarks x 5 policies), and the benchmark harness
executes each figure in its own pytest process.  Experiments describe
their runs as :class:`~repro.campaign.RunSpec` values and hand them to
:func:`gather`, which serves cache hits from the content-addressed
on-disk store and fans misses out over a process pool
(``REPRO_JOBS`` / ``--jobs`` workers; serial by default and under
pytest).  Cache invalidation is automatic: the cache key embeds a
fingerprint of the model source, so there is no version to bump.

Set ``REPRO_NO_CACHE=1`` to force fresh runs and skip cache writes.
"""

from __future__ import annotations

from ..campaign import CampaignRunner, RunSpec, cache_dir, run_cached
from ..core.framework import RunSummary
from ..system.machine import SystemConfig

__all__ = [
    "EXPERIMENT_ACCESSES_PER_CORE",
    "cache_dir",
    "cached_run",
    "gather",
    "normalized",
]

# Scale used by every experiment unless overridden: large enough for
# stable statistics, small enough to keep a cold full-campaign run in
# minutes on a laptop.
EXPERIMENT_ACCESSES_PER_CORE = 5000


def gather(
    specs, jobs: int | None = None, sink=None
) -> dict[RunSpec, RunSummary]:
    """Run every distinct spec (cached, possibly parallel) and map results.

    The canonical experiment shape: build the figure's specs up front,
    ``gather`` them, then look summaries up by spec equality.
    """
    return CampaignRunner(jobs=jobs, sink=sink).run(specs)


def cached_run(
    benchmark: str,
    config: SystemConfig | str,
    policy: str,
    lookahead: int | None = None,
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
    seed: int = 0,
) -> RunSummary:
    """Like :func:`repro.core.run` but memoised on disk.

    Single-run convenience over the campaign cache; sweeps should build
    :class:`RunSpec` lists and :func:`gather` them instead, which also
    buys process-pool fan-out.
    """
    spec = RunSpec.of(
        benchmark, config, policy,
        lookahead=lookahead,
        accesses_per_core=accesses_per_core,
        seed=seed,
    )
    return run_cached(spec)


def normalized(value: float, baseline: float) -> float:
    """Safe ratio (1.0 when the baseline is zero)."""
    return value / baseline if baseline else 1.0

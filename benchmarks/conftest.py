"""Benchmark harness configuration.

Each benchmark target regenerates one table or figure from the paper's
evaluation (see DESIGN.md's experiment index).  pytest-benchmark times
the experiment; the printed rows are the deliverable.  Simulation runs
go through ``repro.campaign`` — content-addressed on the run's
``RunSpec`` plus a fingerprint of the model source, cached on disk
(``.cache/runs``) — so the first cold execution of the harness takes
minutes and subsequent ones take seconds.  Set ``REPRO_JOBS`` to fan
cache misses out over a process pool.
"""

import pytest


@pytest.fixture
def show(capsys):
    """Print an experiment result around pytest's output capturing."""

    def _show(result):
        with capsys.disabled():
            print()
            print(result.format())

    return _show

"""Scenario execution: compile, ride the campaign engine, emit rows.

Nothing here re-implements orchestration — a scenario run is exactly a
:class:`~repro.campaign.runner.CampaignRunner` campaign over the
compiled spec matrix, so the content-addressed cache, the zero-table
cache, retries, ``--jobs`` fan-out, ``--audit`` and telemetry all apply
unchanged.  The only scenario-specific work is ordering: result rows
are emitted in *compile order* (not completion order), which keeps the
JSONL byte-stable across serial and parallel executions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..campaign.runner import CampaignRunner
from .compiler import compile_scenario
from .results import git_rev, result_row
from .schema import Scenario

__all__ = ["ScenarioResult", "run_scenario"]


@dataclass
class ScenarioResult:
    """Everything one scenario execution produced."""

    scenario: Scenario
    specs: list  # compile-ordered RunSpecs
    rows: list  # repro.scenario/v1 dicts, compile-ordered
    counters: dict = field(default_factory=dict)
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def run_scenario(
    scenario: Scenario,
    jobs: int | None = None,
    sink=None,
    fingerprint: str | None = None,
    telemetry=None,
) -> ScenarioResult:
    """Execute a scenario's matrix and build its JSONL rows.

    Failures are collected (``strict=False``), not raised: the rows for
    failed specs are simply absent, and the caller decides whether a
    partial time series is worth keeping (the CLI exits non-zero and
    names every failed cache key).
    """
    specs = compile_scenario(scenario)
    runner = CampaignRunner(
        jobs=jobs, sink=sink, strict=False,
        fingerprint=fingerprint, telemetry=telemetry,
    )
    results = runner.run(specs)
    rev = git_rev()  # one subprocess per scenario, not per row
    rows = [
        result_row(scenario, spec, results[spec],
                   fingerprint=fingerprint, rev=rev)
        for spec in specs
        if spec in results
    ]
    return ScenarioResult(
        scenario=scenario,
        specs=specs,
        rows=rows,
        counters=dict(runner.counters),
        failures=list(runner.failures),
    )

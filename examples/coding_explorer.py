#!/usr/bin/env python
"""Coding explorer: see what each sparse code does to your data.

Feeds a few characteristic 64-byte lines (zeros, small integers,
doubles, ASCII text, random) through every coding scheme and prints the
zeros each one would put on a DDR4 POD bus, plus a worked example of a
single MiLC block with its codeword.

Usage::

    python examples/coding_explorer.py
"""

import numpy as np

from repro.coding import (
    BURST_FORMATS,
    MiLCCode,
    line_zeros,
    raw_line_zeros,
)
from repro.coding.bitops import format_bits
from repro.coding.pipeline import beat_layout

SCHEMES = ("dbi", "milc", "3lwc", "cafo2", "cafo4")


def sample_lines() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(7)
    lines = {}
    lines["all zeros"] = np.zeros(64, dtype=np.uint8)
    small = np.zeros((8, 8), dtype=np.uint8)
    small[:, 0] = rng.integers(0, 256, 8)  # little-endian uint64 < 256
    lines["small integers"] = small.reshape(64)
    fp = rng.integers(0, 256, size=(8, 8), dtype=np.uint8)
    fp[:, 7] = 0x40  # shared exponent byte, like one double array
    fp[:, 6] = 0x09
    fp[:, :2] = 0  # "round" mantissas
    lines["double array"] = fp.reshape(64)
    text = (b"the quick brown fox jumps over the lazy dog "
            b"abcdefghijklmnopqrst")[:64].ljust(64, b" ")
    lines["ascii text"] = np.frombuffer(text, dtype=np.uint8).copy()
    lines["random bytes"] = rng.integers(0, 256, 64, dtype=np.uint8)
    return lines


def main() -> None:
    lines = sample_lines()

    header = f"{'line kind':16s} {'raw':>5s}"
    for scheme in SCHEMES:
        header += f" {scheme:>6s}"
    header += "   (zeros per 64-byte line; lower = less IO energy)"
    print(header)
    print("-" * len(header))
    for kind, line in lines.items():
        row = f"{kind:16s} {int(raw_line_zeros(line)[0]):5d}"
        for scheme in SCHEMES:
            row += f" {int(line_zeros(scheme, line)[0]):6d}"
        print(row)

    print()
    print("Burst formats (Section 4.4):")
    for name in SCHEMES:
        fmt = BURST_FORMATS[name]
        print(f"  {name:6s} burst length {fmt.burst_length:2d} "
              f"({fmt.bus_cycles} bus cycles), +{fmt.extra_latency} tCL")

    # A worked MiLC block: first beat of the double-array line.
    print()
    print("Worked MiLC example (first beat of the double-array line):")
    beat = beat_layout(lines["double array"][None, :])[0, :8]
    bits = np.unpackbits(beat)
    code = MiLCCode()
    word = code.encode(bits[None, :])[0]
    print(f"  beat bytes : {[hex(b) for b in beat]}")
    print(f"  data bits  : {format_bits(bits)}")
    print(f"  codeword   : {format_bits(word)}")
    print(f"  zeros      : {int(80 - word.sum())} of 80 "
          f"(vs {int(64 - bits.sum())} of 64 uncoded)")
    decoded = code.decode(word[None, :])[0]
    assert (decoded == bits).all(), "round-trip failed!"
    print("  round-trip : ok")


if __name__ == "__main__":
    main()

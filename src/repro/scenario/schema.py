"""The declarative scenario format: parse, validate, canonicalise.

A scenario is a small YAML or JSON document describing a *family* of
runs: a traffic description (workload mix weights, arrival process,
zero-density bias) plus a grid of system/policy/geometry axes that the
compiler (:mod:`repro.scenario.compiler`) expands into a deterministic
:class:`~repro.campaign.spec.RunSpec` matrix.  Example::

    schema: repro.scenario/v1
    name: SYN-ZERO-SWEEP
    description: zero-density sweep over a GUPS/CG mix
    seed: 0
    accesses_per_core: 1200
    warmup: 0
    arrival: {kind: poisson, mean_gap: 40}
    mix: {GUPS: 0.6, CG: 0.4}
    data: {zero_bias: 0.0}
    grid:
      policy: [dbi, mil]
      zero_bias: [-0.5, 0.0, 0.5]

Validation is strict — unknown keys, unknown benchmarks/systems/
policies, and out-of-range knobs all fail at parse time with the
offending path in the message — because scenarios are checked-in CI
corpus files: a typo must fail schema validation, not silently run the
wrong experiment.

Everything here is pure data; the canonical form (:func:`normalized`)
and its digest (:func:`scenario_digest`) are what result rows embed so
a JSONL time series can detect that a scenario definition changed.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "SCHEMA_VERSION",
    "GRID_AXES",
    "Arrival",
    "Scenario",
    "ScenarioError",
    "load_scenario",
    "parse_scenario",
    "normalized",
    "scenario_digest",
]

SCHEMA_VERSION = "repro.scenario/v1"

# Grid axes in canonical expansion order (outermost first).  ``system``
# through ``lookahead`` override RunSpec fields; ``channels``/``ranks``
# become system overrides; ``zero_bias``/``mean_gap``/``burst`` rewrite
# the synthesised traffic mix.
GRID_AXES = (
    "system", "policy", "seed", "channels", "ranks", "lookahead",
    "zero_bias", "mean_gap", "burst",
)

_TOP_KEYS = {
    "schema", "name", "description", "seed", "accesses_per_core",
    "warmup", "arrival", "mix", "data", "grid",
}

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class ScenarioError(ValueError):
    """A scenario document failed validation."""

    def __init__(self, source: str, message: str) -> None:
        super().__init__(f"{source}: {message}")
        self.source = source


@dataclass(frozen=True)
class Arrival:
    """The scenario's arrival process (see ``generators.arrival_gaps``)."""

    kind: str
    mean_gap: float
    burst: int = 8


@dataclass(frozen=True)
class Scenario:
    """One parsed, validated scenario document."""

    name: str
    description: str
    seed: int
    accesses_per_core: int
    warmup: int
    arrival: Arrival | None
    mix: tuple  # ((benchmark, weight), ...) sorted by benchmark
    zero_bias: float
    grid: tuple  # ((axis, (values, ...)), ...) in GRID_AXES order
    source: str = "<dict>"

    def grid_values(self, axis: str):
        for name, values in self.grid:
            if name == axis:
                return values
        return None

    @property
    def run_count(self) -> int:
        count = 1
        for _, values in self.grid:
            count *= len(values)
        return count


def _want(doc: dict, key: str, types, source: str, default=None):
    value = doc.get(key, default)
    if value is default and key not in doc:
        return default
    if not isinstance(value, types) or isinstance(value, bool):
        raise ScenarioError(
            source, f"'{key}' must be {types} (got {value!r})"
        )
    return value


def parse_scenario(doc, source: str = "<dict>") -> Scenario:
    """Validate a scenario document and return the frozen Scenario."""
    # Registry imports are deferred so this module stays importable
    # without dragging the whole model stack in for schema-only tools.
    from ..core.policies import known_policy, policy_names
    from ..system.machine import SYSTEMS
    from ..workloads.benchmarks import BENCHMARK_ORDER, BENCHMARKS
    from ..workloads.generators import ARRIVAL_KINDS

    if not isinstance(doc, dict):
        raise ScenarioError(source, f"document must be a mapping, got "
                                    f"{type(doc).__name__}")
    unknown = set(doc) - _TOP_KEYS
    if unknown:
        raise ScenarioError(
            source,
            f"unknown top-level key(s) {sorted(unknown)}; "
            f"known: {sorted(_TOP_KEYS)}",
        )
    schema = doc.get("schema")
    if schema != SCHEMA_VERSION:
        raise ScenarioError(
            source, f"schema must be {SCHEMA_VERSION!r}, got {schema!r}"
        )
    name = _want(doc, "name", str, source)
    if not name or not _NAME_RE.match(name):
        raise ScenarioError(
            source,
            f"'name' must match {_NAME_RE.pattern} (got {name!r}); "
            "convention: SYN-* for synthetic stress, RL-* for "
            "production-like mixes",
        )
    description = _want(doc, "description", str, source, default="")
    seed = _want(doc, "seed", int, source, default=0)
    accesses = _want(doc, "accesses_per_core", int, source, default=1000)
    if accesses <= 0:
        raise ScenarioError(source, "'accesses_per_core' must be positive")
    warmup = _want(doc, "warmup", int, source, default=0)
    if warmup < 0:
        raise ScenarioError(source, "'warmup' must be non-negative")

    # -- arrival -------------------------------------------------------
    arrival = None
    if "arrival" in doc:
        raw = _want(doc, "arrival", dict, source)
        extra = set(raw) - {"kind", "mean_gap", "burst"}
        if extra:
            raise ScenarioError(
                source, f"unknown arrival key(s) {sorted(extra)}"
            )
        kind = str(raw.get("kind", "")).lower()
        if kind not in ARRIVAL_KINDS:
            raise ScenarioError(
                source,
                f"arrival.kind must be one of {list(ARRIVAL_KINDS)}, "
                f"got {raw.get('kind')!r}",
            )
        mean_gap = raw.get("mean_gap")
        if not isinstance(mean_gap, (int, float)) or isinstance(
            mean_gap, bool
        ) or mean_gap < 0:
            raise ScenarioError(
                source, f"arrival.mean_gap must be a non-negative number, "
                        f"got {mean_gap!r}"
            )
        burst = raw.get("burst", 8)
        if not isinstance(burst, int) or isinstance(burst, bool) or burst < 1:
            raise ScenarioError(
                source, f"arrival.burst must be an int >= 1, got {burst!r}"
            )
        arrival = Arrival(kind=kind, mean_gap=float(mean_gap), burst=burst)

    # -- mix -----------------------------------------------------------
    raw_mix = _want(doc, "mix", dict, source)
    if raw_mix is None or not raw_mix:
        raise ScenarioError(
            source, "'mix' must map at least one benchmark to a weight"
        )
    mix: dict[str, float] = {}
    for bench, weight in raw_mix.items():
        upper = str(bench).upper()
        if upper not in BENCHMARKS:
            raise ScenarioError(
                source,
                f"mix benchmark {bench!r} unknown; "
                f"known: {list(BENCHMARK_ORDER)}",
            )
        if not isinstance(weight, (int, float)) or isinstance(
            weight, bool
        ) or weight <= 0:
            raise ScenarioError(
                source, f"mix weight for {bench!r} must be a positive "
                        f"number, got {weight!r}"
            )
        mix[upper] = mix.get(upper, 0.0) + float(weight)
    mix_tuple = tuple(sorted(mix.items()))

    # -- data ----------------------------------------------------------
    zero_bias = 0.0
    if "data" in doc:
        raw = _want(doc, "data", dict, source)
        extra = set(raw) - {"zero_bias"}
        if extra:
            raise ScenarioError(
                source, f"unknown data key(s) {sorted(extra)}"
            )
        zero_bias = raw.get("zero_bias", 0.0)
        if not isinstance(zero_bias, (int, float)) or isinstance(
            zero_bias, bool
        ) or not -1.0 <= zero_bias <= 1.0:
            raise ScenarioError(
                source, f"data.zero_bias must be a number in [-1, 1], "
                        f"got {zero_bias!r}"
            )
        zero_bias = float(zero_bias)

    # -- grid ----------------------------------------------------------
    raw_grid = _want(doc, "grid", dict, source, default={})
    grid: list[tuple[str, tuple]] = []
    for axis in raw_grid or {}:
        if axis not in GRID_AXES:
            raise ScenarioError(
                source, f"unknown grid axis {axis!r}; "
                        f"known: {list(GRID_AXES)}"
            )
    for axis in GRID_AXES:  # canonical order, not document order
        if axis not in (raw_grid or {}):
            continue
        values = raw_grid[axis]
        if not isinstance(values, list) or not values:
            raise ScenarioError(
                source, f"grid.{axis} must be a non-empty list"
            )
        checked = []
        for value in values:
            checked.append(
                _check_axis_value(axis, value, source, SYSTEMS,
                                  known_policy, policy_names)
            )
        if len(set(checked)) != len(checked):
            raise ScenarioError(
                source, f"grid.{axis} has duplicate values: {values!r}"
            )
        grid.append((axis, tuple(checked)))

    scenario = Scenario(
        name=name,
        description=description,
        seed=seed,
        accesses_per_core=accesses,
        warmup=warmup,
        arrival=arrival,
        mix=mix_tuple,
        zero_bias=zero_bias,
        grid=tuple(grid),
        source=source,
    )

    # A synthesised mix (multiple components, biased data, or swept
    # traffic knobs) needs an arrival process to shape it.
    needs_mix = (
        len(mix_tuple) > 1
        or zero_bias != 0.0
        or any(axis in ("zero_bias", "mean_gap", "burst")
               for axis, _ in grid)
    )
    if needs_mix and arrival is None:
        raise ScenarioError(
            source,
            "scenario synthesises mixed/biased traffic (multi-benchmark "
            "mix, nonzero zero_bias, or swept traffic knobs) but has no "
            "'arrival' section to shape it",
        )
    if scenario.grid_values("burst") and (
        arrival is None or arrival.kind != "bursty"
    ):
        raise ScenarioError(
            source, "grid.burst requires arrival.kind == 'bursty'"
        )
    return scenario


def _check_axis_value(axis, value, source, systems, known_policy,
                      policy_names):
    if axis == "system":
        if value not in systems:
            raise ScenarioError(
                source, f"grid.system value {value!r} unknown; "
                        f"known: {sorted(systems)}"
            )
        return value
    if axis == "policy":
        if not isinstance(value, str) or not known_policy(value):
            raise ScenarioError(
                source, f"grid.policy value {value!r} unknown; "
                        f"known: {policy_names()}"
            )
        return value
    if axis in ("seed", "channels", "ranks", "lookahead", "burst"):
        if not isinstance(value, int) or isinstance(value, bool):
            raise ScenarioError(
                source, f"grid.{axis} values must be ints, got {value!r}"
            )
        if axis != "seed" and value < 1 and not (
            axis == "lookahead" and value == 0
        ):
            raise ScenarioError(
                source, f"grid.{axis} value {value!r} out of range"
            )
        return value
    if axis == "zero_bias":
        if not isinstance(value, (int, float)) or isinstance(
            value, bool
        ) or not -1.0 <= value <= 1.0:
            raise ScenarioError(
                source, f"grid.zero_bias values must be numbers in "
                        f"[-1, 1], got {value!r}"
            )
        return float(value)
    if axis == "mean_gap":
        if not isinstance(value, (int, float)) or isinstance(
            value, bool
        ) or value < 0:
            raise ScenarioError(
                source, f"grid.mean_gap values must be non-negative "
                        f"numbers, got {value!r}"
            )
        return float(value)
    raise ScenarioError(source, f"unhandled grid axis {axis!r}")


def load_scenario(path) -> Scenario:
    """Parse and validate a scenario file (.yaml/.yml/.json)."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ScenarioError(str(path), f"cannot read: {exc}") from None
    if path.suffix.lower() in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:
            raise ScenarioError(
                str(path),
                "PyYAML is not installed; use a .json scenario or "
                "install pyyaml",
            ) from None
        try:
            doc = yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ScenarioError(str(path), f"invalid YAML: {exc}") from None
    elif path.suffix.lower() == ".json":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(str(path), f"invalid JSON: {exc}") from None
    else:
        raise ScenarioError(
            str(path), "scenario files must end in .yaml, .yml, or .json"
        )
    return parse_scenario(doc, source=str(path))


def normalized(scenario: Scenario) -> dict:
    """The canonical JSON-safe form of a scenario (digest input)."""
    doc = {
        "schema": SCHEMA_VERSION,
        "name": scenario.name,
        "description": scenario.description,
        "seed": scenario.seed,
        "accesses_per_core": scenario.accesses_per_core,
        "warmup": scenario.warmup,
        "mix": {bench: weight for bench, weight in scenario.mix},
        "data": {"zero_bias": scenario.zero_bias},
        "grid": {axis: list(values) for axis, values in scenario.grid},
    }
    if scenario.arrival is not None:
        doc["arrival"] = {
            "kind": scenario.arrival.kind,
            "mean_gap": scenario.arrival.mean_gap,
            "burst": scenario.arrival.burst,
        }
    return doc


def scenario_digest(scenario: Scenario) -> str:
    """Short content digest of the canonical scenario definition."""
    payload = json.dumps(normalized(scenario), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:12]

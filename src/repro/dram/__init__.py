"""Cycle-level DDR4/LPDDR3 device and timing model.

The paper's key observation (Section 3) is that DRAM timing constraints
leave the data bus idle even under load; this package models those
constraints faithfully enough for the idle-gap, pending-cycle, and slack
distributions of Figures 4-6 to emerge from first principles rather
than be assumed.
"""

from .address import AddressMapper, MappedAddress
from .channel import (
    BankState,
    BusAuditor,
    BusTransaction,
    CommandRecord,
    DRAMChannel,
)
from .commands import (
    DDR4_GEOMETRY,
    LPDDR3_GEOMETRY,
    CommandType,
    Geometry,
)
from .refresh import RefreshScheduler
from .timing import DDR3_1600, DDR4_3200, LPDDR3_1600, TimingParams

__all__ = [
    "AddressMapper",
    "MappedAddress",
    "BankState",
    "BusAuditor",
    "BusTransaction",
    "CommandRecord",
    "DRAMChannel",
    "CommandType",
    "Geometry",
    "DDR4_GEOMETRY",
    "LPDDR3_GEOMETRY",
    "RefreshScheduler",
    "TimingParams",
    "DDR3_1600",
    "DDR4_3200",
    "LPDDR3_1600",
]

"""MiL framework configuration."""

from __future__ import annotations

from dataclasses import dataclass

from ..coding.registry import scheme_info

__all__ = ["MiLConfig"]


@dataclass(frozen=True)
class MiLConfig:
    """Knobs of the opportunistic coding framework (Section 4).

    Attributes
    ----------
    base_scheme:
        The short code used whenever the long code would delay a ready
        column command (the paper uses MiLC at burst length 10).
    long_scheme:
        The opportunistic long code used when the look-ahead window is
        clear (the paper uses 3-LWC at burst length 16).
    lookahead:
        The rdyX window X in DRAM cycles.  ``None`` selects the natural
        value — the long scheme's data-bus occupancy (Section 7.5.2:
        X = 8 for 3-LWC, though the sweep found X = 14 slightly better).
    write_optimization:
        Section 4.6: writes granted a long slot are encoded with *both*
        schemes ahead of time and ship whichever has fewer zeros.
    """

    base_scheme: str = "milc"
    long_scheme: str = "3lwc"
    lookahead: int | None = None
    # Window for the base-vs-uncoded tier (Section 4.2 mentions that "a
    # simpler code or the original data are transferred"; Section 7.5.2
    # notes a more sophisticated decision logic is possible).  Even the
    # base MiLC code stretches the burst by one bus cycle; when demand
    # reads crowd the short window (or the read queue is saturation-
    # deep), the burst ships uncoded (DBI) so nothing is delayed.
    # ``None`` (the default, matching the paper's Figure 11 logic)
    # disables the fallback: MiL always codes at least with MiLC.
    short_lookahead: int | None = None
    fallback_scheme: str = "dbi"
    # Number of soon-ready demand reads that signals genuine bus
    # saturation: below this, the base code's single extra cycle is
    # harmless; at or above it, the burst ships uncoded.
    fallback_threshold: int = 3
    # Independent saturation signal: a deep read queue means latency is
    # queueing-dominated and even one extra cycle per burst compounds,
    # so the burst ships uncoded regardless of row readiness (random-
    # access workloads rarely show "ready" columns, yet saturate).
    fallback_queue_depth: int = 20
    write_optimization: bool = True
    # Count prefetches in the rdyX window?  Off by default: delaying a
    # prefetch is free, so a prefetch-aware controller should not let
    # prefetch trickle veto the long code.
    count_prefetches: bool = False

    def __post_init__(self) -> None:
        base = scheme_info(self.base_scheme)
        long = scheme_info(self.long_scheme)
        scheme_info(self.fallback_scheme)
        if self.short_lookahead is not None and self.short_lookahead < 0:
            raise ValueError("short_lookahead must be non-negative")
        if long.bus_cycles < base.bus_cycles:
            raise ValueError(
                "long scheme must occupy at least as many bus cycles as "
                "the base scheme"
            )
        if self.lookahead is not None and self.lookahead < 0:
            raise ValueError("lookahead must be non-negative")

    @property
    def effective_lookahead(self) -> int:
        """The X actually used by the decision logic."""
        if self.lookahead is not None:
            return self.lookahead
        return scheme_info(self.long_scheme).bus_cycles

    @property
    def extra_cl(self) -> int:
        """Codec latency folded into the column path (Section 7.1)."""
        return max(
            scheme_info(self.base_scheme).extra_latency,
            scheme_info(self.long_scheme).extra_latency,
        )

"""FR-FCFS command scheduling (Rixner et al., ISCA 2000; Table 2).

First-Ready, First-Come-First-Served: among commands that can issue
*now*, column commands to already-open rows (row hits) win, oldest
first; otherwise the scheduler works on the oldest request's row, via
ACTIVATE when the bank is closed or PRECHARGE on a row conflict — but a
conflicting row is never closed while other queued requests still hit
it, which is what makes the policy "first-ready".

The scheduler is a pure function of (queue contents, channel state,
cycle): it returns a ranked candidate list plus the earliest cycle at
which anything could issue, which the event-skipping controller engine
uses to jump time forward.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dram.channel import DRAMChannel
from ..dram.commands import CommandType
from .request import MemoryRequest

__all__ = ["CandidateCommand", "FRFCFSScheduler"]


@dataclass(slots=True)
class CandidateCommand:
    """One legal (or soon-legal) command the scheduler is considering."""

    cmd: CommandType
    rank: int
    group: int
    bank: int
    row: int
    earliest: int
    request: MemoryRequest | None  # None for PRE on behalf of a conflict


class FRFCFSScheduler:
    """Builds and ranks candidate commands for one channel."""

    def __init__(self, channel: DRAMChannel):
        self.channel = channel

    def candidates(
        self,
        entries: list[MemoryRequest],
        now: int,
        bus_cycles_hint: int = 4,
    ) -> list[CandidateCommand]:
        """Candidate commands for ``entries`` (already oldest-first).

        ``bus_cycles_hint`` sizes the data-bus occupancy check for
        column commands; the coding policy may still shorten or extend
        the burst at issue time (only ever *up* to the hint, so the
        earliest-time computation stays conservative).
        """
        channel = self.channel
        earliest_issue = channel.earliest_issue
        banks = channel.banks
        out: list[CandidateCommand] = []
        read_cmd, write_cmd = CommandType.READ, CommandType.WRITE
        act_cmd, pre_cmd = CommandType.ACTIVATE, CommandType.PRECHARGE

        # Rows wanted per bank, to defer precharges while hits remain.
        open_rows_wanted: dict[tuple[int, int, int], set[int]] = {}
        conflicts: list = []
        banks_handled: set[tuple[int, int, int]] = set()

        for req in entries:
            m = req.mapped
            rank, group, bank_idx = m.rank, m.bank_group, m.bank
            open_row = banks[rank][group][bank_idx].open_row
            key = (rank, group, bank_idx)
            open_rows_wanted.setdefault(key, set()).add(m.row)

            if open_row == m.row:
                cmd = write_cmd if req.is_write else read_cmd
                out.append(
                    CandidateCommand(
                        cmd, rank, group, bank_idx, m.row,
                        earliest_issue(cmd, rank, group, bank_idx, now,
                                       bus_cycles_hint),
                        req,
                    )
                )
                continue

            if key in banks_handled:
                continue  # one row-management command per bank per pass
            banks_handled.add(key)

            if open_row is None:
                out.append(
                    CandidateCommand(
                        act_cmd, rank, group, bank_idx, m.row,
                        earliest_issue(act_cmd, rank, group, bank_idx, now),
                        req,
                    )
                )
            else:
                conflicts.append((key, open_row))

        # Row conflicts: close the row only once nothing queued still
        # hits it (first-ready preference).
        for (rank, group, bank_idx), open_row in conflicts:
            if open_row in open_rows_wanted[(rank, group, bank_idx)]:
                continue
            out.append(
                CandidateCommand(
                    pre_cmd, rank, group, bank_idx, open_row,
                    earliest_issue(pre_cmd, rank, group, bank_idx, now),
                    None,
                )
            )
        return out

    def pick(
        self, cands: list[CandidateCommand], now: int
    ) -> CandidateCommand | None:
        """Best candidate issueable exactly at ``now`` (or None).

        Ranking: ready column commands oldest-first, then ready
        ACT/PRE in the queue order the candidates were generated in
        (i.e. on behalf of the oldest requests).
        """
        ready = [c for c in cands if c.earliest <= now]
        if not ready:
            return None
        columns = [c for c in ready if c.cmd.is_column]
        if columns:
            return min(
                columns, key=lambda c: (c.request.arrival, c.request.serial)
            )
        return ready[0]

    @staticmethod
    def next_wakeup(cands: list[CandidateCommand]) -> int | None:
        """Earliest cycle any candidate becomes issueable."""
        if not cands:
            return None
        return min(c.earliest for c in cands)

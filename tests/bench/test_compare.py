"""Baseline comparison: the regression gate."""

import pytest

from repro.bench.compare import compare_reports, format_comparison


def _report(entries):
    return {"results": [
        {"name": name, "params": params,
         "ns_per_op": {"min": ns, "median": ns, "mad": 0.0}}
        for name, ns, params in entries
    ]}


class TestGate:
    def test_two_x_slowdown_fails_the_gate(self):
        baseline = _report([("k", 100.0, {})])
        current = _report([("k", 200.0, {})])
        cmp = compare_reports(current, baseline, max_regression_pct=20.0)
        assert not cmp.ok
        assert cmp.regressions[0].name == "k"
        assert cmp.regressions[0].ratio == pytest.approx(2.0)

    def test_within_threshold_passes(self):
        baseline = _report([("k", 100.0, {})])
        current = _report([("k", 119.0, {})])
        assert compare_reports(current, baseline, 20.0).ok

    def test_speedup_never_fails(self):
        baseline = _report([("k", 100.0, {})])
        current = _report([("k", 10.0, {})])
        cmp = compare_reports(current, baseline, 0.0)
        assert cmp.ok
        assert cmp.improvements[0].ratio == pytest.approx(0.1)

    def test_regressions_sorted_worst_first(self):
        baseline = _report([("a", 100.0, {}), ("b", 100.0, {})])
        current = _report([("a", 150.0, {}), ("b", 300.0, {})])
        cmp = compare_reports(current, baseline, 20.0)
        assert [d.name for d in cmp.regressions] == ["b", "a"]

    def test_param_mismatch_is_skipped_not_compared(self):
        baseline = _report([("k", 100.0, {"lines": 1024})])
        current = _report([("k", 900.0, {"lines": 2048})])
        cmp = compare_reports(current, baseline, 20.0)
        assert cmp.ok
        assert cmp.param_mismatches == ("k",)

    def test_membership_differences_reported(self):
        baseline = _report([("old", 1.0, {})])
        current = _report([("new", 1.0, {})])
        cmp = compare_reports(current, baseline, 20.0)
        assert cmp.missing_in_baseline == ("new",)
        assert cmp.missing_in_current == ("old",)
        assert cmp.ok  # membership drift alone never gates

    def test_zero_baseline_counts_as_regression(self):
        baseline = _report([("k", 0.0, {})])
        current = _report([("k", 5.0, {})])
        assert not compare_reports(current, baseline, 20.0).ok

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            compare_reports(_report([]), _report([]), -1.0)


class TestFormatting:
    def test_failure_text_names_the_regression(self):
        cmp = compare_reports(
            _report([("slow.kernel", 200.0, {})]),
            _report([("slow.kernel", 100.0, {})]),
            20.0,
        )
        text = format_comparison(cmp)
        assert "REGRESSED" in text and "slow.kernel" in text
        assert "FAILED" in text and "2.00x" in text

    def test_success_text(self):
        cmp = compare_reports(
            _report([("k", 100.0, {})]), _report([("k", 100.0, {})]), 20.0
        )
        assert "OK" in format_comparison(cmp)

"""One telemetry session: a registry, a trace ring, and probe wiring.

A :class:`TelemetrySession` is the object handed to
:func:`repro.system.simulator.simulate` (for cycle-level runs) or to
:class:`repro.campaign.runner.CampaignRunner` (for orchestration).  It
owns the :class:`MetricRegistry` and :class:`TraceBuffer` and hands out
probes bound to them; when no session is supplied the components keep
``probe = None`` and the instrumentation sites stay dormant.

``time_unit`` declares what the trace timestamps mean — ``"cycles"``
for run-level sessions (scaled to real time through ``cycle_ns`` at
export) or ``"seconds"`` for campaign-level ones (the shared monotonic
clock of :mod:`repro.telemetry.clock`).
"""

from __future__ import annotations

from .probes import CampaignProbe, ChannelProbe, ServiceProbe, SimProbe
from .registry import MetricRegistry
from .trace import DEFAULT_CAPACITY, TraceBuffer

__all__ = ["TelemetrySession"]


class TelemetrySession:
    """Container for one run's (or one campaign's) observability state."""

    def __init__(
        self,
        label: str = "run",
        trace_capacity: int = DEFAULT_CAPACITY,
        trace_enabled: bool = True,
        time_unit: str = "cycles",
    ):
        if time_unit not in ("cycles", "seconds"):
            raise ValueError("time_unit must be 'cycles' or 'seconds'")
        self.label = label
        self.time_unit = time_unit
        self.registry = MetricRegistry()
        self.trace = TraceBuffer(trace_capacity) if trace_enabled else None
        # Nanoseconds per DRAM cycle; the wiring layer sets this from the
        # system's timing so exported traces land on a real time axis.
        self.cycle_ns = 1.0
        self._channel_probes: dict[int, ChannelProbe] = {}
        self._campaign_probe: CampaignProbe | None = None
        self._service_probe: ServiceProbe | None = None
        self._sim_probe: SimProbe | None = None

    # -- probe wiring ---------------------------------------------------
    def channel_probe(self, channel: int) -> ChannelProbe:
        probe = self._channel_probes.get(channel)
        if probe is None:
            probe = ChannelProbe(self.registry, self.trace, channel)
            self._channel_probes[channel] = probe
        return probe

    def campaign_probe(self) -> CampaignProbe:
        if self._campaign_probe is None:
            self._campaign_probe = CampaignProbe(self.registry, self.trace)
        return self._campaign_probe

    def sim_probe(self) -> SimProbe:
        if self._sim_probe is None:
            self._sim_probe = SimProbe(self.registry)
        return self._sim_probe

    def service_probe(self) -> ServiceProbe:
        if self._service_probe is None:
            self._service_probe = ServiceProbe(self.registry, self.trace)
        return self._service_probe

    # -- aggregation ----------------------------------------------------
    def decision_modes(self) -> dict:
        """Per-mode decision counts summed over channels (Figure 22)."""
        merged: dict[str, int] = {}
        for probe in self._channel_probes.values():
            for mode, counter in probe.modes.items():
                if counter.value:
                    merged[mode] = merged.get(mode, 0) + counter.value
        return merged

    def stats_table(self) -> dict:
        """Compact aggregate merged into ``RunSummary.stats``.

        Everything here is *about* the run, never *of* it: the cache
        layer strips ``stats`` before hashing/storing, so this table
        rides through the campaign engine without touching result
        identity.
        """
        bursts = acts = drains = 0
        rdq = wrq = None
        for probe in self._channel_probes.values():
            bursts += probe.bursts.value
            acts += probe.act_cmds.value
            drains += probe.drain_transitions.value
            rdq = probe.rdq_occupancy if rdq is None else rdq
            wrq = probe.wrq_occupancy if wrq is None else wrq
        table = {
            "label": self.label,
            "metrics": len(self.registry),
            "bursts": bursts,
            "act_count": acts,
            "drain_transitions": drains,
            "decision_modes": self.decision_modes(),
        }
        if self.trace is not None:
            table["trace_events"] = len(self.trace)
            table["trace_dropped"] = self.trace.dropped
        return table

    def metrics_payload(self) -> dict:
        """Full metrics dump (the JSONL exporter's source of truth)."""
        return {
            "meta": {
                "label": self.label,
                "time_unit": self.time_unit,
                "cycle_ns": self.cycle_ns,
                "trace_events": 0 if self.trace is None else len(self.trace),
                "trace_dropped": 0 if self.trace is None else self.trace.dropped,
                "summary": self.stats_table(),
            },
            "metrics": self.registry.as_dict(),
        }

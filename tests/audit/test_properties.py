"""Property test: every controller run audits clean under ProtocolAuditor.

This is the strongest statement of auditor/channel agreement: hypothesis
generates arbitrary request streams (the same traffic model the
scheduler invariants use), replays the *full* recorded command log —
not just the bus transactions — through the independent re-derivation,
and requires zero violations.  Any divergence between the channel's
saturating-register enforcement and the auditor's pairwise/sliding-
window checks shows up here with a shrunk reproducer.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controller import AlwaysScheme, ChannelController
from repro.dram import DDR4_3200, DDR4_GEOMETRY

from tests.controller.test_scheduler_properties import COMMON, drive, traffic


class TestAuditProperties:
    @settings(**COMMON)
    @given(traffic(), st.sampled_from(["dbi", "milc", "3lwc"]))
    def test_controller_runs_audit_clean(self, arrivals, scheme):
        mc = ChannelController(
            DDR4_3200, DDR4_GEOMETRY, policy=AlwaysScheme(scheme),
            keep_cmd_log=True,
        )
        drive(mc, arrivals)
        violations = mc.audit()
        assert violations == [], [str(v) for v in violations]

    @settings(**COMMON)
    @given(traffic())
    def test_closed_page_runs_audit_clean(self, arrivals):
        # Closed-page is the auto-precharge-heavy regime: every lone
        # column command carries AP, so this leans hardest on the
        # internal-precharge timing re-derivation.
        mc = ChannelController(
            DDR4_3200, DDR4_GEOMETRY, page_policy="closed",
            keep_cmd_log=True,
        )
        drive(mc, arrivals)
        violations = mc.audit()
        assert violations == [], [str(v) for v in violations]

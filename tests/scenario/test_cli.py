"""The ``repro scenario`` verb, end to end."""

import json

import pytest

from repro.cli import main

TINY_YAML = """\
schema: repro.scenario/v1
name: SYN-CLI
description: cli smoke scenario
seed: 0
accesses_per_core: 80
arrival: {kind: poisson, mean_gap: 30}
mix: {GUPS: 0.5, CG: 0.5}
grid:
  policy: [dbi, mil]
"""


@pytest.fixture()
def corpus(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    path = tmp_path / "syn-cli.yaml"
    path.write_text(TINY_YAML)
    return tmp_path, path


class TestListShowCompile:
    def test_list_names_and_run_counts(self, corpus, capsys):
        tmp_path, _ = corpus
        assert main(["scenario", "list", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "SYN-CLI" in out
        assert "2 runs" in out

    def test_list_flags_invalid_files(self, corpus, capsys):
        tmp_path, _ = corpus
        (tmp_path / "broken.json").write_text('{"schema": "nope"}')
        assert main(["scenario", "list", "--dir", str(tmp_path)]) == 0
        assert "INVALID" in capsys.readouterr().out

    def test_show_prints_canonical_form(self, corpus, capsys):
        _, path = corpus
        assert main(["scenario", "show", str(path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["name"] == "SYN-CLI"
        assert doc["schema"] == "repro.scenario/v1"

    def test_compile_output_is_byte_stable(self, corpus, capsys):
        _, path = corpus
        assert main(["scenario", "compile", str(path)]) == 0
        first = capsys.readouterr().out
        assert main(["scenario", "compile", str(path)]) == 0
        assert capsys.readouterr().out == first
        lines = [json.loads(line) for line in first.splitlines()]
        assert len(lines) == 2
        assert {l["spec"]["policy"] for l in lines} == {"dbi", "mil"}

    def test_dry_run_matches_compile(self, corpus, capsys):
        _, path = corpus
        assert main(["scenario", "compile", str(path)]) == 0
        compiled = capsys.readouterr().out
        assert main(["scenario", "run", str(path), "--dry-run"]) == 0
        assert capsys.readouterr().out == compiled

    def test_invalid_file_exits(self, corpus):
        tmp_path, _ = corpus
        bad = tmp_path / "bad.yaml"
        bad.write_text("schema: wrong\nname: X\nmix: {GUPS: 1}\n")
        with pytest.raises(SystemExit):
            main(["scenario", "show", str(bad)])

    def test_missing_corpus_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["scenario", "compile", "--dir", str(tmp_path / "void")])


class TestRun:
    def test_twice_run_hits_cache_with_identical_rows(self, corpus,
                                                      capsys):
        tmp_path, path = corpus
        out1 = tmp_path / "pass1.jsonl"
        out2 = tmp_path / "pass2.jsonl"
        assert main(["scenario", "run", str(path), "--out",
                     str(out1)]) == 0
        assert main(["scenario", "run", str(path), "--out",
                     str(out2)]) == 0
        rows1 = [json.loads(l) for l in out1.read_text().splitlines()]
        rows2 = [json.loads(l) for l in out2.read_text().splitlines()]
        assert len(rows1) == len(rows2) == 2
        assert all(r["timing"]["cache_hit"] is False for r in rows1)
        assert all(r["timing"]["cache_hit"] is True for r in rows2)
        strip = lambda rows: [
            {k: v for k, v in r.items() if k != "timing"} for r in rows
        ]
        assert strip(rows1) == strip(rows2)
        err = capsys.readouterr().err
        assert "2 cache hits" in err

    def test_out_with_multiple_scenarios_rejected(self, corpus):
        tmp_path, path = corpus
        other = tmp_path / "other.yaml"
        other.write_text(TINY_YAML.replace("SYN-CLI", "SYN-CLI2"))
        with pytest.raises(SystemExit):
            main(["scenario", "run", str(path), str(other), "--out",
                  str(tmp_path / "x.jsonl")])

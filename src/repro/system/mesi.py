"""MESI coherence directory for the private-L1 / shared-L2 hierarchy.

Table 2 lists MESI as the coherence protocol.  The directory tracks, per
line, which cores hold it and in what state; the hierarchy consults it
on every L1 miss so cross-core sharing produces the right
invalidations, downgrades, and ownership transfers.  The synthetic
workloads share sparingly (like the originals' mostly-partitioned
parallel loops), but the protocol is implemented and tested in full.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["MESIState", "MESIDirectory", "CoherenceOutcome"]


class MESIState(Enum):
    MODIFIED = "M"
    EXCLUSIVE = "E"
    SHARED = "S"
    INVALID = "I"


class CoherenceOutcome:
    """What a coherence transaction did (for stats and writeback routing)."""

    def __init__(self):
        self.invalidated: list[int] = []  # cores whose copy was dropped
        self.downgraded: list[int] = []  # cores moved M/E -> S
        self.dirty_writeback = False  # an M copy supplied the data


class MESIDirectory:
    """Full-map directory: line address -> {core: state}."""

    def __init__(self, cores: int):
        if cores < 1:
            raise ValueError("need at least one core")
        self.cores = cores
        self._lines: dict[int, dict[int, MESIState]] = {}
        self.invalidations = 0
        self.downgrades = 0
        self.dirty_transfers = 0

    def state(self, core: int, line: int) -> MESIState:
        """Current state of ``line`` in ``core``'s cache."""
        return self._lines.get(line, {}).get(core, MESIState.INVALID)

    def sharers(self, line: int) -> list[int]:
        """Cores holding a valid copy."""
        return sorted(self._lines.get(line, {}))

    def _entry(self, line: int) -> dict[int, MESIState]:
        return self._lines.setdefault(line, {})

    def read(self, core: int, line: int) -> CoherenceOutcome:
        """Core issues a read (BusRd).  M holders downgrade and flush."""
        outcome = CoherenceOutcome()
        entry = self._entry(line)
        mine = entry.get(core, MESIState.INVALID)
        if mine is not MESIState.INVALID:
            return outcome  # hit: no directory action

        others = [c for c in entry if c != core]
        for other in others:
            if entry[other] in (MESIState.MODIFIED, MESIState.EXCLUSIVE):
                if entry[other] is MESIState.MODIFIED:
                    outcome.dirty_writeback = True
                    self.dirty_transfers += 1
                entry[other] = MESIState.SHARED
                outcome.downgraded.append(other)
                self.downgrades += 1
        entry[core] = MESIState.SHARED if others else MESIState.EXCLUSIVE
        return outcome

    def write(self, core: int, line: int) -> CoherenceOutcome:
        """Core issues a write (BusRdX/upgrade).  All other copies die."""
        outcome = CoherenceOutcome()
        entry = self._entry(line)
        for other in [c for c in entry if c != core]:
            if entry[other] is MESIState.MODIFIED:
                outcome.dirty_writeback = True
                self.dirty_transfers += 1
            del entry[other]
            outcome.invalidated.append(other)
            self.invalidations += 1
        entry[core] = MESIState.MODIFIED
        return outcome

    def evict(self, core: int, line: int) -> bool:
        """Core drops its copy; returns True if it was dirty (M)."""
        entry = self._lines.get(line)
        if not entry or core not in entry:
            return False
        was_dirty = entry[core] is MESIState.MODIFIED
        del entry[core]
        if not entry:
            del self._lines[line]
        return was_dirty

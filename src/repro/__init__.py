"""MiL (More is Less) — reproduction of Song & Ipek, MICRO 2015.

A data-communication framework built on top of DDR4/LPDDR3 that
opportunistically transmits sparse-coded bursts during otherwise-idle
data-bus cycles, cutting IO energy without hurting performance.

Subpackages
-----------
``repro.coding``
    DBI, bus-invert, transition signaling, 3-LWC, MiLC, CAFO, and the
    optimal static LWC potential study.
``repro.dram``
    Cycle-level DDR4/LPDDR3 device and timing model (bank groups, tFAW,
    refresh, the full Table 2 parameter sets).
``repro.controller``
    FR-FCFS memory controller with write-drain watermarks and an
    event-skipping scheduling engine.
``repro.core``
    The MiL framework itself: look-ahead decision logic, dynamic burst
    lengths, and the write-side double-encode optimisation.
``repro.system``
    Multicore CPU + cache substrate (L1/L2, MESI, stream prefetcher)
    and the two Table 2 machine configurations.
``repro.energy``
    IO, DRAM, system, and codec-synthesis energy/cost models.
``repro.workloads``
    Synthetic versions of the 11-benchmark suite from Table 3.
``repro.analysis``
    Bus instrumentation and the Figures 4-6 metrics.
``repro.campaign``
    Run planning (``RunSpec``), content-addressed caching keyed on a
    model-source fingerprint, and parallel campaign execution with
    structured progress events.
``repro.experiments``
    One module per table/figure in the paper's evaluation.
"""

__version__ = "1.1.0"

# Convenience re-exports, loaded lazily so `import repro` stays cheap
# and numpy-free paths (e.g. `repro.__version__` lookups) don't pay for
# the whole stack.
_LAZY = {
    "run": ("repro.core.framework", "run"),
    "run_spec": ("repro.core.framework", "run_spec"),
    "RunSummary": ("repro.core.framework", "RunSummary"),
    "RunSpec": ("repro.campaign", "RunSpec"),
    "CampaignRunner": ("repro.campaign", "CampaignRunner"),
    "MiLConfig": ("repro.core.config", "MiLConfig"),
    "NIAGARA_SERVER": ("repro.system.machine", "NIAGARA_SERVER"),
    "SNAPDRAGON_MOBILE": ("repro.system.machine", "SNAPDRAGON_MOBILE"),
    "BENCHMARKS": ("repro.workloads.benchmarks", "BENCHMARKS"),
    "BENCHMARK_ORDER": ("repro.workloads.benchmarks", "BENCHMARK_ORDER"),
    "ALL_EXPERIMENTS": ("repro.experiments", "ALL_EXPERIMENTS"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module 'repro' has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(list(globals()) + list(_LAZY))

"""Figure 2: what happens when 3-LWC is always on (the motivating strawman).

Applying the (8,17) 3-LWC to *every* burst cuts IO energy deeply — by
1.7x on CG and 3.1x on GUPS in the paper — but the doubled burst length
inflates execution time (+14 % / +42 %), and the extra background energy
erases most of the system-level savings.  This failure is the reason MiL
exists; reproducing its *shape* (big IO win, big slowdown, marginal
system win) validates the motivation.
"""

from __future__ import annotations

from ..campaign import RunSpec
from ..system.machine import NIAGARA_SERVER
from .base import ExperimentResult
from .runner import EXPERIMENT_ACCESSES_PER_CORE, gather

__all__ = ["run_experiment", "plan", "BENCHMARKS"]

BENCHMARKS = ("CG", "GUPS")

PAPER = {
    # benchmark: (exec time, io energy, system energy), vs DBI.
    "CG": (1.14, 1 / 1.7, 0.99),
    "GUPS": (1.42, 1 / 3.1, 0.99),
}


def plan(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> list[RunSpec]:
    return [
        RunSpec(benchmark=bench, system=NIAGARA_SERVER.name, policy=policy,
                accesses_per_core=accesses_per_core)
        for bench in BENCHMARKS
        for policy in ("dbi", "3lwc")
    ]


def run_experiment(
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
) -> ExperimentResult:
    runs = gather(plan(accesses_per_core))
    rows = []
    for bench in BENCHMARKS:
        base, lwc = (
            runs[RunSpec(benchmark=bench, system=NIAGARA_SERVER.name,
                         policy=policy,
                         accesses_per_core=accesses_per_core)]
            for policy in ("dbi", "3lwc")
        )
        rows.append(
            [
                bench,
                lwc.cycles / base.cycles,
                lwc.dram_energy["io"] / base.dram_energy["io"],
                lwc.system_total_j / base.system_total_j,
                PAPER[bench][0],
                PAPER[bench][1],
                PAPER[bench][2],
            ]
        )
    result = ExperimentResult(
        experiment="fig02",
        title=(
            "Figure 2: always-on (8,17) 3-LWC vs the DBI baseline "
            "(DDR4 server)"
        ),
        headers=[
            "benchmark", "exec_time", "io_energy", "system_energy",
            "paper_exec", "paper_io", "paper_sys",
        ],
        rows=rows,
        paper_claim=(
            "3-LWC cuts IO energy 1.7x (CG) / 3.1x (GUPS) but slows "
            "execution 14% / 42%, leaving marginal system savings"
        ),
    )
    return result


if __name__ == "__main__":
    print(run_experiment().format())

"""Tests for the closed-loop timing simulator."""

import numpy as np
import pytest

from repro.controller import AlwaysScheme
from repro.system import NIAGARA_SERVER, SNAPDRAGON_MOBILE, simulate
from repro.workloads import MemoryTrace, TraceRecord


def make_trace(records_by_core, name="t"):
    n = sum(len(r) for r in records_by_core)
    data = np.zeros((n, 64), dtype=np.uint8)
    return MemoryTrace(name=name, records_by_core=records_by_core,
                       line_data=data)


def rec(core, gap, line, write=False, prefetch=False, dependent=False,
        line_id=0):
    return TraceRecord(core=core, gap=gap, address=line * 64,
                       is_write=write, line_id=line_id,
                       is_prefetch=prefetch, dependent=dependent)


def seq_trace(core_count, per_core, gap=20, stride=64):
    records = []
    lid = 0
    for c in range(core_count):
        rs = []
        for i in range(per_core):
            rs.append(rec(c, gap, (c * 100_000) + i * stride, line_id=lid))
            lid += 1
        records.append(rs)
    return make_trace(records)


class TestCompletion:
    def test_all_demand_reads_complete(self):
        trace = seq_trace(4, 50)
        result = simulate(trace, NIAGARA_SERVER)
        assert result.demand_reads == 200

    def test_single_read_latency_floor(self):
        trace = make_trace([[rec(0, 0, 5)]])
        result = simulate(trace, NIAGARA_SERVER)
        t = NIAGARA_SERVER.timing
        assert result.cycles == t.RCD + t.CL + 4

    def test_writes_complete_in_background(self):
        trace = make_trace([[rec(0, 0, i, write=True, line_id=i)
                             for i in range(10)]])
        result = simulate(trace, NIAGARA_SERVER)
        writes = sum(mc.channel.write_count for mc in result.controllers)
        forwarded = result.stats["coalesced_writes"]
        assert writes + forwarded == 10

    def test_empty_trace(self):
        trace = make_trace([[]])
        result = simulate(trace, NIAGARA_SERVER)
        assert result.cycles == 0
        assert result.demand_reads == 0


class TestTimingSemantics:
    def test_gaps_pace_the_core(self):
        fast = simulate(seq_trace(1, 40, gap=5), NIAGARA_SERVER)
        slow = simulate(seq_trace(1, 40, gap=100), NIAGARA_SERVER)
        assert slow.cycles > 2 * fast.cycles

    def test_dependent_chain_serializes(self):
        free = make_trace([[rec(0, 0, i * 1000, line_id=i)
                            for i in range(20)]])
        chained_records = [rec(0, 0, i * 1000, dependent=(i > 0), line_id=i)
                           for i in range(20)]
        chained = make_trace([chained_records])
        t_free = simulate(free, NIAGARA_SERVER).cycles
        t_chained = simulate(chained, NIAGARA_SERVER).cycles
        assert t_chained > 2 * t_free

    def test_mlp_limits_overlap(self):
        # More outstanding requests than MLP: time scales with batches.
        trace = make_trace([[rec(0, 0, i * 997, line_id=i)
                             for i in range(32)]])
        result = simulate(trace, NIAGARA_SERVER)
        # With MLP=4 and ~60-cycle latency, 32 misses need >= 8 waves.
        assert result.cycles > 8 * 40

    def test_longer_bursts_slow_saturated_bus(self):
        trace = seq_trace(8, 60, gap=2)
        base = simulate(trace, NIAGARA_SERVER,
                        lambda: AlwaysScheme("dbi")).cycles
        lwc = simulate(trace, NIAGARA_SERVER,
                       lambda: AlwaysScheme("3lwc")).cycles
        assert lwc > base * 1.2


class TestAccounting:
    def test_bus_utilization_bounded(self):
        result = simulate(seq_trace(4, 80, gap=10), NIAGARA_SERVER)
        assert 0.0 < result.bus_utilization <= 1.0

    def test_pending_cycles_bounded(self):
        result = simulate(seq_trace(2, 50), NIAGARA_SERVER)
        for pending in result.pending_cycles:
            assert 0 <= pending <= result.cycles

    def test_scheme_counts_cover_all_bursts(self):
        result = simulate(seq_trace(2, 50), NIAGARA_SERVER)
        bursts = sum(
            mc.channel.read_count + mc.channel.write_count
            for mc in result.controllers
        )
        assert sum(result.scheme_counts.values()) == bursts

    def test_prefetches_not_counted_as_demand(self):
        records = [[rec(0, 10, i, prefetch=(i % 2 == 0), line_id=i)
                    for i in range(20)]]
        result = simulate(make_trace(records), NIAGARA_SERVER)
        assert result.demand_reads == 10

    def test_transactions_iterate_all_channels(self):
        result = simulate(seq_trace(4, 50), NIAGARA_SERVER)
        txs = list(result.transactions())
        per_channel = sum(
            len(mc.channel.transactions) for mc in result.controllers
        )
        assert len(txs) == per_channel

    def test_seconds_property(self):
        result = simulate(seq_trace(1, 10), NIAGARA_SERVER)
        expect = result.cycles / (NIAGARA_SERVER.timing.clock_ghz * 1e9)
        assert result.seconds == pytest.approx(expect)


class TestMobileSystem:
    def test_runs_on_lpddr3(self):
        result = simulate(seq_trace(4, 40), SNAPDRAGON_MOBILE)
        assert result.demand_reads == 160
        assert result.system == SNAPDRAGON_MOBILE.name

    def test_clock_ratio_conversion(self):
        assert NIAGARA_SERVER.cpu_per_dram_clock == pytest.approx(2.0)
        assert SNAPDRAGON_MOBILE.cpu_per_dram_clock == pytest.approx(2.0)
        assert NIAGARA_SERVER.cpu_to_dram_cycles(3) == 2
        assert NIAGARA_SERVER.cpu_to_dram_cycles(0) == 0

"""Tests for the per-rank row-open occupancy accounting."""

from repro.dram import DDR4_3200, DDR4_GEOMETRY, CommandType, DRAMChannel

ACT, PRE, RD = (
    CommandType.ACTIVATE, CommandType.PRECHARGE, CommandType.READ,
)


def channel():
    return DRAMChannel(DDR4_3200, DDR4_GEOMETRY)


class TestOpenCycles:
    def test_never_opened(self):
        ch = channel()
        assert ch.rank_open_cycles(0, 1000) == 0

    def test_open_interval_counts_live(self):
        ch = channel()
        ch.issue(ACT, 0, 0, 0, 100, row=1)
        assert ch.rank_open_cycles(0, 160) == 60

    def test_closed_interval_frozen(self):
        ch = channel()
        ch.issue(ACT, 0, 0, 0, 0, row=1)
        ch.issue(PRE, 0, 0, 0, DDR4_3200.RAS)
        assert ch.rank_open_cycles(0, 10_000) == DDR4_3200.RAS

    def test_overlapping_banks_count_once(self):
        # Two banks open with overlapping lifetimes: the rank is "open"
        # for the union, not the sum.
        ch = channel()
        ch.issue(ACT, 0, 0, 0, 0, row=1)
        ch.issue(ACT, 0, 1, 0, DDR4_3200.RRD_S, row=1)
        ch.issue(PRE, 0, 0, 0, DDR4_3200.RAS)
        t2 = DDR4_3200.RRD_S + DDR4_3200.RAS
        ch.issue(PRE, 0, 1, 0, t2)
        assert ch.rank_open_cycles(0, 10_000) == t2

    def test_auto_precharge_closes_rank(self):
        # RDA closes the bank for scheduling immediately, but the row
        # keeps drawing active-standby current until the *internal*
        # precharge at max(tACT+tRAS, tRD+tRTP).
        ch = channel()
        ch.issue(ACT, 0, 0, 0, 0, row=1)
        t = max(DDR4_3200.RCD, DDR4_3200.RAS - DDR4_3200.RTP)
        ch.issue(RD, 0, 0, 0, t, auto_precharge=True)
        assert ch.ranks[0].open_banks == 0
        internal_pre = max(DDR4_3200.RAS, t + DDR4_3200.RTP)
        assert ch.rank_open_cycles(0, 10_000) == internal_pre

    def test_auto_precharge_matches_explicit_precharge(self):
        # Occupancy under RDA must equal an explicit RD followed by a
        # PRE at the earliest legal cycle — the internal precharge is
        # the same event, just issued by the device.
        ch_auto = channel()
        ch_auto.issue(ACT, 0, 0, 0, 0, row=1)
        ch_auto.issue(RD, 0, 0, 0, DDR4_3200.RCD, auto_precharge=True)

        ch_exp = channel()
        ch_exp.issue(ACT, 0, 0, 0, 0, row=1)
        ch_exp.issue(RD, 0, 0, 0, DDR4_3200.RCD)
        pre_at = ch_exp.earliest_issue(PRE, 0, 0, 0, DDR4_3200.RCD)
        ch_exp.issue(PRE, 0, 0, 0, pre_at)

        assert (
            ch_auto.rank_open_cycles(0, 10_000)
            == ch_exp.rank_open_cycles(0, 10_000)
        )

    def test_auto_precharge_write_matches_explicit(self):
        # Same equivalence for WRA: internal precharge waits for
        # write-data end + tWR.
        WR = CommandType.WRITE
        ch_auto = channel()
        ch_auto.issue(ACT, 0, 0, 0, 0, row=1)
        ch_auto.issue(WR, 0, 0, 0, DDR4_3200.RCD, auto_precharge=True)

        ch_exp = channel()
        ch_exp.issue(ACT, 0, 0, 0, 0, row=1)
        ch_exp.issue(WR, 0, 0, 0, DDR4_3200.RCD)
        pre_at = ch_exp.earliest_issue(PRE, 0, 0, 0, DDR4_3200.RCD)
        ch_exp.issue(PRE, 0, 0, 0, pre_at)

        assert (
            ch_auto.rank_open_cycles(0, 10_000)
            == ch_exp.rank_open_cycles(0, 10_000)
        )

    def test_auto_precharge_open_interval_clips_to_now(self):
        # Query *before* the internal precharge completes: the open
        # interval is still running and must clip at ``now``.
        ch = channel()
        ch.issue(ACT, 0, 0, 0, 0, row=1)
        ch.issue(RD, 0, 0, 0, DDR4_3200.RCD, auto_precharge=True)
        probe = DDR4_3200.RCD + 2  # before max(tRAS, tRCD + tRTP)
        assert ch.rank_open_cycles(0, probe) == probe

    def test_reopen_before_internal_precharge_merges_interval(self):
        # ACT on another bank while an auto-precharge is still draining:
        # the rank never goes all-closed, so the interval is continuous.
        ch = channel()
        ch.issue(ACT, 0, 0, 0, 0, row=1)
        ch.issue(RD, 0, 0, 0, DDR4_3200.RCD, auto_precharge=True)
        t2 = DDR4_3200.RRD_L  # well before the internal precharge
        ch.issue(ACT, 0, 0, 1, t2, row=1)
        ch.issue(PRE, 0, 0, 1, t2 + DDR4_3200.RAS)
        assert ch.rank_open_cycles(0, 10_000) == t2 + DDR4_3200.RAS

    def test_ranks_independent(self):
        ch = channel()
        ch.issue(ACT, 0, 0, 0, 0, row=1)
        ch.issue(ACT, 1, 0, 0, 50, row=1)
        assert ch.rank_open_cycles(0, 100) == 100
        assert ch.rank_open_cycles(1, 100) == 50

"""Shared experiment infrastructure: cached runs and aggregation.

Figures 16-19 and 22 all consume the same 110 simulation runs
(2 systems x 11 benchmarks x 5 policies), and the benchmark harness
executes each figure in its own pytest process; an on-disk JSON cache
keyed by the run parameters (plus a cache version, bumped whenever a
model change invalidates old numbers) keeps the whole harness re-runnable
in seconds once warm.

Set the environment variable ``REPRO_NO_CACHE=1`` to force fresh runs.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from ..core.framework import RunSummary, run
from ..system.machine import SYSTEMS, SystemConfig

__all__ = [
    "CACHE_VERSION",
    "EXPERIMENT_ACCESSES_PER_CORE",
    "cache_dir",
    "cached_run",
    "normalized",
]

# Bump when simulator/energy/workload changes invalidate cached results.
CACHE_VERSION = 6

# Scale used by every experiment unless overridden: large enough for
# stable statistics, small enough to keep a cold full-campaign run in
# minutes on a laptop.
EXPERIMENT_ACCESSES_PER_CORE = 5000


def cache_dir() -> Path:
    """Directory holding cached run summaries."""
    root = os.environ.get("REPRO_CACHE_DIR")
    if root:
        return Path(root)
    return Path(__file__).resolve().parents[3] / ".cache" / "runs"


def _cache_key(
    benchmark: str,
    system: str,
    policy: str,
    lookahead: int | None,
    accesses_per_core: int,
    seed: int,
) -> str:
    look = "auto" if lookahead is None else str(lookahead)
    return (
        f"v{CACHE_VERSION}-{benchmark}-{system}-{policy}-x{look}"
        f"-n{accesses_per_core}-s{seed}"
    )


def cached_run(
    benchmark: str,
    config: SystemConfig | str,
    policy: str,
    lookahead: int | None = None,
    accesses_per_core: int = EXPERIMENT_ACCESSES_PER_CORE,
    seed: int = 0,
) -> RunSummary:
    """Like :func:`repro.core.run` but memoised on disk."""
    if isinstance(config, str):
        config = SYSTEMS[config]
    key = _cache_key(
        benchmark, config.name, policy, lookahead, accesses_per_core, seed
    )
    path = cache_dir() / f"{key}.json"
    if not os.environ.get("REPRO_NO_CACHE") and path.exists():
        try:
            return RunSummary.from_dict(json.loads(path.read_text()))
        except (json.JSONDecodeError, TypeError):
            path.unlink()  # corrupt entry: recompute
    summary = run(
        benchmark, config, policy,
        lookahead=lookahead,
        accesses_per_core=accesses_per_core,
        seed=seed,
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(summary.to_dict()))
    return summary


def normalized(value: float, baseline: float) -> float:
    """Safe ratio (1.0 when the baseline is zero)."""
    return value / baseline if baseline else 1.0

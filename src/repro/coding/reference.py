"""Pure-Python reference backends — the codec correctness oracle.

Every class here re-derives its code directly from the paper's prose,
one element at a time, in plain Python: nibble pairs are classified with
``if`` chains, MiLC rows pick candidates with ``min()``, CAFO passes
walk 8x8 squares with nested loops.  Nothing is shared with the
vectorised kernels in the sibling modules beyond the
:class:`~repro.coding.base.CodingScheme` interface, which is the point:
the hypothesis suite in ``tests/coding/test_backend_equivalence.py``
cross-validates the two implementations bit-for-bit, so a vectorisation
bug in a batched kernel cannot hide behind its own zero table.

The backends register themselves under ``impl="reference"``; select
them process-wide with ``REPRO_CODEC_IMPL=reference`` (or the CLI's
``--codec-impl reference``).  They are orders of magnitude slower than
the numpy kernels — the batched-codec benchmark gate quantifies the
gap — but they must produce byte-identical zero tables, which is what
keeps campaign cache entries backend-independent.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from .base import CodingScheme
from .registry import register_backend

__all__ = [
    "ReferenceDBI",
    "ReferenceThreeLWC",
    "ReferenceMiLC",
    "ReferenceCAFO",
    "ReferenceKLWC",
]

_POPCOUNT = [bin(v).count("1") for v in range(256)]


def _byte_bits(value: int) -> list[int]:
    """One byte as a list of 8 bits, MSB first."""
    return [(value >> s) & 1 for s in range(7, -1, -1)]


def _bits_value(bits) -> int:
    """MSB-first bit list back to its integer value."""
    value = 0
    for b in bits:
        value = (value << 1) | int(b)
    return value


def _rows_of(block) -> list[list[int]]:
    """A 64-bit block as eight 8-bit rows (the 8x8 square)."""
    return [list(block[8 * i : 8 * i + 8]) for i in range(8)]


class ReferenceDBI(CodingScheme):
    """Per-byte DBI exactly as Section 2.1.1 describes it."""

    name = "dbi"
    data_bits = 8
    code_bits = 9
    extra_latency_cycles = 0

    def encode_blocks(self, data_bits: np.ndarray) -> np.ndarray:
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        lead = data_bits.shape[:-1]
        out = []
        for row in data_bits.reshape(-1, 8).tolist():
            if row.count(0) > 4:
                out.append([1 - b for b in row] + [0])
            else:
                out.append(row + [1])
        return np.array(out, dtype=np.uint8).reshape(lead + (9,))

    def decode_blocks(self, code_bits: np.ndarray) -> np.ndarray:
        code_bits = np.asarray(code_bits, dtype=np.uint8)
        lead = code_bits.shape[:-1]
        out = []
        for word in code_bits.reshape(-1, 9).tolist():
            body = word[:8]
            out.append(body if word[8] == 1 else [1 - b for b in body])
        return np.array(out, dtype=np.uint8).reshape(lead + (8,))

    def count_zeros(self, data_bits: np.ndarray) -> np.ndarray:
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        lead = data_bits.shape[:-1]
        out = []
        for row in data_bits.reshape(-1, 8).tolist():
            zeros = row.count(0)
            out.append(zeros if zeros <= 4 else (8 - zeros) + 1)
        return np.array(out, dtype=np.int64).reshape(lead)

    def count_zeros_bytes(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data, dtype=np.uint8)
        lead = data.shape[:-1]
        out = []
        for row in data.reshape(-1, data.shape[-1]).tolist():
            total = 0
            for byte in row:
                zeros = 8 - _POPCOUNT[byte]
                total += zeros if zeros <= 4 else (8 - zeros) + 1
            out.append(total)
        return np.array(out, dtype=np.int64).reshape(lead)


def _lwc_mode(left: int, right: int) -> int:
    """Table 1 of the paper, transcribed case by case."""
    if left == right:
        return 0b00 if left == 0 else 0b01
    if right == 0:
        return 0b00
    if left == 0:
        return 0b10
    return 0b10 if left > right else 0b00


def _lwc_word(byte: int) -> list[int]:
    """Pre-complement ``code || mode`` word for one byte value."""
    left, right = byte >> 4, byte & 0xF
    code = [0] * 15
    if left:
        code[left - 1] = 1
    if right:
        code[right - 1] = 1
    mode = _lwc_mode(left, right)
    return code + [(mode >> 1) & 1, mode & 1]


class ReferenceThreeLWC(CodingScheme):
    """The (8, 17) 3-LWC, one nibble pair at a time (Figure 13)."""

    name = "3lwc"
    data_bits = 8
    code_bits = 17
    extra_latency_cycles = 1

    def encode_blocks(self, data_bits: np.ndarray) -> np.ndarray:
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        lead = data_bits.shape[:-1]
        out = []
        for row in data_bits.reshape(-1, 8).tolist():
            out.append([1 - b for b in _lwc_word(_bits_value(row))])
        return np.array(out, dtype=np.uint8).reshape(lead + (17,))

    def decode_blocks(self, code_bits: np.ndarray) -> np.ndarray:
        code_bits = np.asarray(code_bits, dtype=np.uint8)
        lead = code_bits.shape[:-1]
        out = []
        for transmitted in code_bits.reshape(-1, 17).tolist():
            word = [1 - b for b in transmitted]
            code, mode = word[:15], (word[15] << 1) | word[16]
            lanes = [i + 1 for i, b in enumerate(code) if b]
            if not lanes:
                left = right = 0
            elif len(lanes) == 1:
                value = lanes[0]
                if mode == 0b01:
                    left = right = value
                elif mode == 0b10:
                    left, right = 0, value
                else:
                    left, right = value, 0
            else:
                small, large = lanes[0], lanes[-1]
                if mode == 0b10:
                    left, right = large, small
                else:
                    left, right = small, large
            out.append(_byte_bits((left << 4) | right))
        return np.array(out, dtype=np.uint8).reshape(lead + (8,))

    def count_zeros(self, data_bits: np.ndarray) -> np.ndarray:
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        lead = data_bits.shape[:-1]
        out = [
            sum(_lwc_word(_bits_value(row)))
            for row in data_bits.reshape(-1, 8).tolist()
        ]
        return np.array(out, dtype=np.int64).reshape(lead)

    def count_zeros_bytes(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data, dtype=np.uint8)
        lead = data.shape[:-1]
        out = [
            sum(sum(_lwc_word(byte)) for byte in row)
            for row in data.reshape(-1, data.shape[-1]).tolist()
        ]
        return np.array(out, dtype=np.int64).reshape(lead)


def _milc_encode_square(rows: list[list[int]]) -> list[int]:
    """Encode one 8x8 square to its 80-bit MiLC word (Figure 14)."""
    choices = []
    for i in range(8):
        ones = sum(rows[i])
        costs = [(8 - ones) + 2, ones + 1]
        if i > 0:
            xor_ones = sum(
                rows[i][j] ^ rows[i - 1][j] for j in range(8)
            )
            costs += [(8 - xor_ones) + 1, xor_ones]
        choices.append(costs.index(min(costs)))

    body: list[int] = []
    inv_col: list[int] = []
    xor_col: list[int] = []
    for i, choice in enumerate(choices):
        if choice >= 2:
            base = [rows[i][j] ^ rows[i - 1][j] for j in range(8)]
        else:
            base = list(rows[i])
        if choice % 2:
            base = [1 - b for b in base]
        body.extend(base)
        inv_col.append(choice % 2)
        xor_col.append(1 if choice >= 2 else 0)

    tail = xor_col[1:]
    tail_ones = sum(tail)
    if (tail_ones + 1) < (7 - tail_ones):
        xor_out = [0] + [1 - b for b in tail]
    else:
        xor_out = [1] + tail
    return body + inv_col + xor_out


class ReferenceMiLC(CodingScheme):
    """The (64, 80) MiLC, one row decision at a time."""

    name = "milc"
    data_bits = 64
    code_bits = 80
    extra_latency_cycles = 1

    def encode_blocks(self, data_bits: np.ndarray) -> np.ndarray:
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        lead = data_bits.shape[:-1]
        out = [
            _milc_encode_square(_rows_of(block))
            for block in data_bits.reshape(-1, 64).tolist()
        ]
        return np.array(out, dtype=np.uint8).reshape(lead + (80,))

    def decode_blocks(self, code_bits: np.ndarray) -> np.ndarray:
        code_bits = np.asarray(code_bits, dtype=np.uint8)
        lead = code_bits.shape[:-1]
        out = []
        for word in code_bits.reshape(-1, 80).tolist():
            body = _rows_of(word[:64])
            inv_col = word[64:72]
            xor_raw = word[72:80]
            if xor_raw[0] == 0:
                xor_col = [0] + [1 - b for b in xor_raw[1:]]
            else:
                xor_col = [0] + xor_raw[1:]
            rows: list[list[int]] = []
            for i in range(8):
                row = body[i]
                if inv_col[i]:
                    row = [1 - b for b in row]
                if xor_col[i]:
                    row = [row[j] ^ rows[i - 1][j] for j in range(8)]
                rows.append(row)
            out.append([b for row in rows for b in row])
        return np.array(out, dtype=np.uint8).reshape(lead + (64,))

    def count_zeros(self, data_bits: np.ndarray) -> np.ndarray:
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        lead = data_bits.shape[:-1]
        out = [
            _milc_encode_square(_rows_of(block)).count(0)
            for block in data_bits.reshape(-1, 64).tolist()
        ]
        return np.array(out, dtype=np.int64).reshape(lead)

    def count_zeros_bytes(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data, dtype=np.uint8)
        if data.shape[-1] % 8 != 0:
            raise ValueError("MiLC operates on whole 8-byte blocks")
        lead = data.shape[:-1]
        out = []
        for line in data.reshape(-1, data.shape[-1]).tolist():
            total = 0
            for start in range(0, len(line), 8):
                rows = [_byte_bits(b) for b in line[start : start + 8]]
                total += _milc_encode_square(rows).count(0)
            out.append(total)
        return np.array(out, dtype=np.int64).reshape(lead)


def _cafo_solve(
    rows: list[list[int]], iterations: int | None
) -> tuple[list[int], list[int]]:
    """Row/column flip indicators for one square, synchronised passes."""
    rf = [0] * 8
    cf = [0] * 8

    def row_pass() -> bool:
        flips = []
        for i in range(8):
            zeros = sum(
                1 - (rows[i][j] ^ rf[i] ^ cf[j]) for j in range(8)
            )
            flips.append(((8 - zeros) + (1 - rf[i])) < (zeros + rf[i]))
        for i, flip in enumerate(flips):
            if flip:
                rf[i] ^= 1
        return any(flips)

    def col_pass() -> bool:
        flips = []
        for j in range(8):
            zeros = sum(
                1 - (rows[i][j] ^ rf[i] ^ cf[j]) for i in range(8)
            )
            flips.append(((8 - zeros) + (1 - cf[j])) < (zeros + cf[j]))
        for j, flip in enumerate(flips):
            if flip:
                cf[j] ^= 1
        return any(flips)

    if iterations is not None:
        for i in range(iterations):
            row_pass() if i % 2 == 0 else col_pass()
    else:
        for _ in range(64):
            changed = row_pass()
            changed |= col_pass()
            if not changed:
                break
    return rf, cf


class ReferenceCAFO(CodingScheme):
    """(64, 80) CAFO with nested-loop passes over each 8x8 square."""

    data_bits = 64
    code_bits = 80

    def __init__(self, iterations: int | None = 2):
        if iterations is not None and iterations < 1:
            raise ValueError("iterations must be >= 1 or None")
        self.iterations = iterations
        self.name = "cafo" if iterations is None else f"cafo{iterations}"
        self.extra_latency_cycles = (
            iterations if iterations is not None else 4
        )

    def _encode_square(self, rows: list[list[int]]) -> list[int]:
        rf, cf = _cafo_solve(rows, self.iterations)
        eff = [
            rows[i][j] ^ rf[i] ^ cf[j]
            for i in range(8)
            for j in range(8)
        ]
        return eff + [1 - f for f in rf] + [1 - f for f in cf]

    def encode_blocks(self, data_bits: np.ndarray) -> np.ndarray:
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        lead = data_bits.shape[:-1]
        out = [
            self._encode_square(_rows_of(block))
            for block in data_bits.reshape(-1, 64).tolist()
        ]
        return np.array(out, dtype=np.uint8).reshape(lead + (80,))

    def decode_blocks(self, code_bits: np.ndarray) -> np.ndarray:
        code_bits = np.asarray(code_bits, dtype=np.uint8)
        lead = code_bits.shape[:-1]
        out = []
        for word in code_bits.reshape(-1, 80).tolist():
            eff = _rows_of(word[:64])
            rf = [1 - b for b in word[64:72]]
            cf = [1 - b for b in word[72:80]]
            out.append(
                [
                    eff[i][j] ^ rf[i] ^ cf[j]
                    for i in range(8)
                    for j in range(8)
                ]
            )
        return np.array(out, dtype=np.uint8).reshape(lead + (64,))

    def count_zeros(self, data_bits: np.ndarray) -> np.ndarray:
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        lead = data_bits.shape[:-1]
        out = [
            self._encode_square(_rows_of(block)).count(0)
            for block in data_bits.reshape(-1, 64).tolist()
        ]
        return np.array(out, dtype=np.int64).reshape(lead)

    def count_zeros_bytes(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data, dtype=np.uint8)
        if data.shape[-1] % 8 != 0:
            raise ValueError("CAFO operates on whole 8-byte blocks")
        lead = data.shape[:-1]
        out = []
        for line in data.reshape(-1, data.shape[-1]).tolist():
            total = 0
            for start in range(0, len(line), 8):
                rows = [_byte_bits(b) for b in line[start : start + 8]]
                total += self._encode_square(rows).count(0)
            out.append(total)
        return np.array(out, dtype=np.int64).reshape(lead)


class ReferenceKLWC(CodingScheme):
    """Enumerative k-LWC with an explicit Python codebook dict."""

    def __init__(self, data_bits: int, code_bits: int, max_weight: int):
        self.data_bits = data_bits
        self.code_bits = code_bits
        self.max_weight = max_weight
        self.name = f"lwc-{data_bits}-{code_bits}-w{max_weight}"
        self.extra_latency_cycles = 1

        size = 1 << data_bits
        words: list[tuple[int, ...]] = []
        weight = 0
        while len(words) < size:
            for ones in combinations(range(code_bits), weight):
                if len(words) >= size:
                    break
                word = [0] * code_bits
                for i in ones:
                    word[i] = 1
                words.append(tuple(word))
            weight += 1
        if len(words) < size:
            raise ValueError("codebook cannot hold all data values")
        self._words = words
        self._reverse = {word: value for value, word in enumerate(words)}

    def encode_blocks(self, data_bits: np.ndarray) -> np.ndarray:
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        lead = data_bits.shape[:-1]
        out = [
            [1 - b for b in self._words[_bits_value(row)]]
            for row in data_bits.reshape(-1, self.data_bits).tolist()
        ]
        return np.array(out, dtype=np.uint8).reshape(
            lead + (self.code_bits,)
        )

    def decode_blocks(self, code_bits: np.ndarray) -> np.ndarray:
        code_bits = np.asarray(code_bits, dtype=np.uint8)
        lead = code_bits.shape[:-1]
        out = []
        for transmitted in code_bits.reshape(-1, self.code_bits).tolist():
            word = tuple(1 - b for b in transmitted)
            try:
                value = self._reverse[word]
            except KeyError:
                raise ValueError(
                    "word is not a codeword of this LWC"
                ) from None
            out.append(
                [(value >> s) & 1 for s in range(self.data_bits - 1, -1, -1)]
            )
        return np.array(out, dtype=np.uint8).reshape(
            lead + (self.data_bits,)
        )

    def count_zeros(self, data_bits: np.ndarray) -> np.ndarray:
        data_bits = np.asarray(data_bits, dtype=np.uint8)
        lead = data_bits.shape[:-1]
        out = [
            sum(self._words[_bits_value(row)])
            for row in data_bits.reshape(-1, self.data_bits).tolist()
        ]
        return np.array(out, dtype=np.int64).reshape(lead)

    def count_zeros_bytes(self, data: np.ndarray) -> np.ndarray:
        if self.data_bits != 8:
            raise ValueError("byte fast path requires data_bits == 8")
        data = np.asarray(data, dtype=np.uint8)
        lead = data.shape[:-1]
        out = [
            sum(sum(self._words[byte]) for byte in row)
            for row in data.reshape(-1, data.shape[-1]).tolist()
        ]
        return np.array(out, dtype=np.int64).reshape(lead)


# ----------------------------------------------------------------------
# Self-registration: one reference backend per registered codec scheme.
# ----------------------------------------------------------------------
register_backend("dbi", "reference")(ReferenceDBI)
register_backend("3lwc", "reference")(ReferenceThreeLWC)
register_backend("milc", "reference")(ReferenceMiLC)
register_backend("cafo2", "reference")(lambda: ReferenceCAFO(2))
register_backend("cafo4", "reference")(lambda: ReferenceCAFO(4))
register_backend("lwc12", "reference")(lambda: ReferenceKLWC(8, 12, 3))

"""The checked-in scenarios/ corpus stays valid and cheap."""

from repro.scenario import compile_scenario, discover, load_scenario


def test_corpus_discovered_sorted():
    paths = discover()
    assert paths, "checked-in corpus must not be empty"
    assert paths == sorted(paths)
    assert {p.name for p in paths} >= {"syn-zero-sweep.yaml",
                                       "syn-smoke.yaml"}


def test_corpus_all_valid_and_compilable():
    names = set()
    for path in discover():
        scn = load_scenario(path)
        assert scn.name not in names, f"duplicate scenario {scn.name}"
        names.add(scn.name)
        assert scn.name.startswith(("SYN-", "RL-")), (
            f"{path.name}: corpus names are SYN-* or RL-*"
        )
        specs = compile_scenario(scn)
        assert 0 < len(specs) == scn.run_count
        # Corpus scenarios are CI-sized: small matrices, small runs.
        assert scn.run_count <= 8, f"{scn.name} too large for the corpus"
        assert scn.accesses_per_core + scn.warmup <= 1500


def test_missing_directory_is_empty(tmp_path):
    assert discover(tmp_path / "nope") == []

"""End-to-end MiL runs: trace -> simulation -> energy -> summary.

This is the top of the public API: :func:`run` executes one
(benchmark, system, policy) combination and returns a JSON-serialisable
:class:`RunSummary` with everything the paper's figures need —
execution time, zero counts, scheme mix, energy breakdowns, and the
Figures 4-6 bus statistics.  The experiment modules and the benchmark
harness are thin loops around it.

Policy names (this table is generated from :mod:`repro.core.policies`
at import time, so it always matches the registered set):

"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from ..analysis.metrics import (
    idle_gap_histogram,
    pending_split,
    slack_histogram,
)
from ..coding.pipeline import precompute_line_zeros, raw_line_zeros
from ..coding.registry import real_schemes
from ..energy.constants import (
    DDR4_ENERGY,
    LPDDR3_ENERGY,
    MOBILE_SYSTEM_ENERGY,
    SERVER_SYSTEM_ENERGY,
)
from ..energy.dram_power import DramEnergyModel
from ..energy.system_power import SystemEnergyModel
from ..system.machine import NIAGARA_SERVER, SNAPDRAGON_MOBILE, SystemConfig
from ..system.simulator import simulate
from ..workloads.benchmarks import DEFAULT_ACCESSES_PER_CORE, build_trace
from .decision import MiLPolicy
from .policies import get_policy, make_factory, policy_names, policy_table

__all__ = ["POLICIES", "RunSummary", "run", "run_spec",
           "make_policy_factory", "energy_params_for",
           "system_energy_params_for"]

__doc__ = (__doc__ or "") + policy_table() + "\n"


def __getattr__(name: str):
    # ``POLICIES`` is a live view of the policy registry, so policies
    # registered after import (one-file extensions) are visible to
    # legacy consumers of the tuple too.
    if name == "POLICIES":
        return policy_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def energy_params_for(config: SystemConfig):
    """DRAM energy constants matching a system configuration.

    Keyed by the DRAM generation so design-space variants of the two
    Table 2 machines (renamed via ``dataclasses.replace``) still find
    their constants.
    """
    if config.timing.name == DDR4_ENERGY.name:
        return DDR4_ENERGY
    if config.timing.name == LPDDR3_ENERGY.name:
        return LPDDR3_ENERGY
    raise KeyError(f"no energy parameters for system {config.name!r}")


def system_energy_params_for(config: SystemConfig):
    """Whole-system energy constants matching a configuration."""
    if config.timing.name == DDR4_ENERGY.name:
        return SERVER_SYSTEM_ENERGY
    if config.timing.name == LPDDR3_ENERGY.name:
        return MOBILE_SYSTEM_ENERGY
    raise KeyError(f"no system energy parameters for {config.name!r}")


def make_policy_factory(
    policy: str,
    zeros_by_scheme: dict[str, np.ndarray] | None = None,
    lookahead: int | None = None,
    mil_overrides: dict | None = None,
):
    """Build a per-channel policy factory for :func:`simulate`.

    Thin alias of :func:`repro.core.policies.make_factory`, kept under
    its historical name.
    """
    return make_factory(policy, zeros_by_scheme, lookahead, mil_overrides)


@dataclass
class RunSummary:
    """Everything one (benchmark, system, policy) run produced."""

    benchmark: str
    system: str
    policy: str
    lookahead: int | None
    cycles: int
    seconds: float
    bus_utilization: float
    mean_read_latency: float
    demand_reads: int
    total_zeros: int  # zeros transferred over both channels
    raw_zeros: int  # zeros the uncoded data would have cost
    scheme_counts: dict = field(default_factory=dict)
    dram_energy: dict = field(default_factory=dict)  # Figure 18 categories
    system_energy: dict = field(default_factory=dict)
    idle_gaps: dict = field(default_factory=dict)  # Figure 4 buckets
    slack: dict = field(default_factory=dict)  # Figure 6 buckets
    pending: dict = field(default_factory=dict)  # Figure 5 fractions
    write_optimized: int = 0
    trace_records: int = 0
    # Orchestration metadata (per-run wall time, cache-hit flag, ...),
    # filled by the campaign layer; never part of the cached payload,
    # so it carries no simulation semantics.
    stats: dict = field(default_factory=dict)

    @property
    def dram_total_j(self) -> float:
        return sum(self.dram_energy.values())

    @property
    def system_total_j(self) -> float:
        return self.system_energy.get("total", 0.0)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunSummary":
        return cls(**data)


def run(
    benchmark: str,
    config: SystemConfig,
    policy: str = "mil",
    lookahead: int | None = None,
    accesses_per_core: int = DEFAULT_ACCESSES_PER_CORE,
    seed: int = 0,
    mil_overrides: dict | None = None,
    telemetry=None,
    audit=None,
) -> RunSummary:
    """Execute one benchmark under one policy and summarise it.

    The same trace (same benchmark/system/seed/scale) is replayed for
    every policy, so policy comparisons are paired.

    ``telemetry`` is an optional
    :class:`~repro.telemetry.session.TelemetrySession`.  Probes only
    observe, so the summary is identical with or without one; the
    session's aggregate table lands in ``RunSummary.stats`` (which the
    cache strips before hashing), never in the simulated results.

    ``audit`` is an optional :class:`~repro.audit.AuditReport` to fill
    with a post-run protocol audit (see :mod:`repro.audit`); like
    telemetry, it rides outside the run's identity.  When the
    ``REPRO_AUDIT`` environment opt-in is set and no report was passed
    (the campaign-worker path), a failed audit raises
    :class:`~repro.audit.ProtocolViolationError` instead, so the
    campaign runner collects it as a per-run failure.
    """
    from ..audit import (
        AuditReport,
        ProtocolViolationError,
        audit_enabled,
        audit_simulation,
    )

    want_audit = audit is not None or audit_enabled()
    trace = build_trace(
        benchmark, config, seed=seed, accesses_per_core=accesses_per_core
    )
    zeros_by_scheme = precompute_line_zeros(
        trace.line_data, real_schemes(), digest=trace.line_digest
    )
    factory = make_policy_factory(
        policy, zeros_by_scheme, lookahead, mil_overrides
    )

    result = simulate(
        trace, config, factory, telemetry=telemetry,
        record_commands=want_audit,
    )

    # Energy: only defined for policies whose schemes have codecs.
    has_energy = get_policy(policy).has_energy
    dram_energy: dict = {}
    system_energy: dict = {}
    total_zeros = 0
    if has_energy:
        dram_model = DramEnergyModel(energy_params_for(config))
        breakdown = dram_model.evaluate(result, zeros_by_scheme)
        dram_energy = breakdown.as_dict()
        system_model = SystemEnergyModel(
            system_energy_params_for(config), config
        )
        sys_breakdown = system_model.evaluate(result, trace, breakdown)
        system_energy = {
            "cores": sys_breakdown.cores,
            "uncore": sys_breakdown.uncore,
            "dram": sys_breakdown.dram.total,
            "total": sys_breakdown.total,
        }
        for tr in result.transactions():
            total_zeros += int(zeros_by_scheme[tr.scheme][tr.request_id])

    raw_zeros = 0
    if trace.line_data.size:
        raw_per_line = raw_line_zeros(trace.line_data)
        for tr in result.transactions():
            raw_zeros += int(raw_per_line[tr.request_id])

    # Figures 4-6 statistics (meaningful mainly for the baseline run).
    # Gaps are a per-channel notion: each data bus has its own idle
    # cycles, so the histograms are computed per controller and summed.
    idle: dict[str, int] = {}
    slack: dict[str, int] = {}
    for mc in result.controllers:
        for bucket, count in idle_gap_histogram(
            mc.channel.transactions
        ).items():
            idle[bucket] = idle.get(bucket, 0) + count
        for bucket, count in slack_histogram(
            mc.channel.transactions, config.timing
        ).items():
            slack[bucket] = slack.get(bucket, 0) + count
    splits = [
        pending_split(
            result.cycles,
            mc.channel.busy_cycles,
            result.pending_cycles[ch],
        )
        for ch, mc in enumerate(result.controllers)
    ]
    merged = pending_split(
        result.cycles * len(splits),
        sum(s.utilized for s in splits),
        sum(s.utilized + s.idle_pending for s in splits),
    )

    write_optimized = 0
    for mc in result.controllers:
        if isinstance(mc.policy, MiLPolicy):
            write_optimized += mc.policy.write_optimized

    summary = RunSummary(
        benchmark=benchmark,
        system=config.name,
        policy=policy,
        lookahead=lookahead,
        cycles=result.cycles,
        seconds=result.seconds,
        bus_utilization=result.bus_utilization,
        mean_read_latency=result.mean_read_latency,
        demand_reads=result.demand_reads,
        total_zeros=total_zeros,
        raw_zeros=raw_zeros,
        scheme_counts=result.scheme_counts,
        dram_energy=dram_energy,
        system_energy=system_energy,
        idle_gaps=idle,
        slack=slack,
        pending=merged.fractions(),
        write_optimized=write_optimized,
        trace_records=trace.total_records,
    )
    if telemetry is not None:
        summary.stats["telemetry"] = telemetry.stats_table()
    if want_audit:
        report = audit if audit is not None else AuditReport()
        audit_simulation(result, config, report)
        summary.stats["audit"] = report.to_table()
        if audit is None and not report.clean:
            raise ProtocolViolationError(report)
    return summary


def run_spec(spec, telemetry=None, audit=None) -> RunSummary:
    """Execute one :class:`~repro.campaign.spec.RunSpec`.

    Duck-typed on purpose: the campaign layer depends on this module,
    so importing the spec class here would be circular.  ``telemetry``
    and ``audit`` deliberately live *outside* the spec: observing a run
    must not change its identity, so cache keys are the same with them
    on or off.
    """
    return run(
        spec.benchmark,
        spec.resolve_system(),
        spec.policy,
        lookahead=spec.lookahead,
        accesses_per_core=spec.accesses_per_core,
        seed=spec.seed,
        mil_overrides=dict(spec.mil_overrides) or None,
        telemetry=telemetry,
        audit=audit,
    )

"""Energy model constants for the DDR4 and LPDDR3 systems.

The paper estimates energy with McPAT 1.0 and the Micron DDR4/LPDDR3
power calculators (Section 6.1).  Neither tool is available here, so
this module carries per-event energies and background powers in the
same structure those calculators use (IDD-class-derived activate,
column, refresh, background, and IO terms), with values chosen from
public datasheet ballparks and then calibrated against two anchors the
paper itself reports:

* **Figure 1**: at sustained utilisation, the IO interface accounts for
  ~42 % of DDR4 module power;
* **Section 7.3/7.4**: DDR4 background power is large enough that a 49 %
  IO-energy cut yields ~8 % DRAM-system savings, while aggressively
  power-optimised LPDDR3 turns a 46 % IO cut into ~17 %.

All energies are in joules; powers in watts; the DRAM cycle times come
from :mod:`repro.dram.timing`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DramEnergyParams", "DDR4_ENERGY", "DDR3_ENERGY",
           "LPDDR3_ENERGY", "SystemEnergyParams", "SERVER_SYSTEM_ENERGY",
           "MOBILE_SYSTEM_ENERGY"]


@dataclass(frozen=True)
class DramEnergyParams:
    """Per-event energies and background powers for one DRAM type."""

    name: str
    # IO: the asymmetric-cost term MiL attacks.  For DDR4's POD
    # interface this is the energy per transmitted 0 (driver pull-down
    # current through the VDDQ termination for one bit time, both ends);
    # for LPDDR3 with transition signaling it is the energy per wire
    # flip (C * V^2 charge/discharge), which coding makes equal to the
    # per-zero count.
    energy_per_zero_bit: float
    # Per-beat clocking/receiver overhead independent of data values
    # (DLL, strobes); this is what extended bursts pay even for 1s.
    energy_per_beat: float
    # DRAM core events.
    energy_activate_precharge: float  # one ACT+PRE pair (whole rank row)
    energy_column_read: float  # array + peripheral per 512-bit column
    energy_column_write: float
    energy_refresh_per_rank: float  # one REF command
    # Background (standby) power per rank; the paper stresses DDR4's
    # lack of a fast power-down mode, so active standby applies whenever
    # requests are in flight.
    background_active_w: float
    background_precharge_w: float

    def __post_init__(self) -> None:
        for f in (
            "energy_per_zero_bit", "energy_per_beat",
            "energy_activate_precharge", "energy_column_read",
            "energy_column_write", "energy_refresh_per_rank",
            "background_active_w", "background_precharge_w",
        ):
            if getattr(self, f) < 0:
                raise ValueError(f"{f} must be non-negative")


# DDR4-3200, VDDQ-terminated POD interface (Section 2.1.1).
DDR4_ENERGY = DramEnergyParams(
    name="DDR4-3200",
    energy_per_zero_bit=14e-12,  # ~24 mA through ~50 ohm at 1.2 V, 312 ps
    energy_per_beat=0.1e-12,  # per-pin clocking amortised per beat
    energy_activate_precharge=5e-9,  # IDD0-derived, 8 KB page, x8 rank
    energy_column_read=1.2e-9,
    energy_column_write=1.3e-9,
    energy_refresh_per_rank=250e-9,
    background_active_w=0.095,  # no fast power-down: this bites
    background_precharge_w=0.065,
)

# DDR3-1600: SSTL center-tap termination burns IO power on *both*
# levels (no POD asymmetry) and the 1.5 V rail costs more everywhere —
# the Figure 1 comparison point that motivated DDR4's POD interface.
# "energy_per_zero_bit" here is the average per-bit line energy (SSTL
# pays for 1s too, so coding buys little; that is Figure 1's message).
DDR3_ENERGY = DramEnergyParams(
    name="DDR3-1600",
    energy_per_zero_bit=11e-12,
    energy_per_beat=9e-12,  # SSTL termination burns on every beat
    energy_activate_precharge=9e-9,
    energy_column_read=1.6e-9,
    energy_column_write=1.7e-9,
    energy_refresh_per_rank=300e-9,
    background_active_w=0.130,
    background_precharge_w=0.090,
)

# LPDDR3-1600, unterminated interface with transition signaling
# (Sections 2.1.2, 4.5): energy per wire flip = 0.5 * C * V^2 with
# PoP-class load capacitance, and deeply optimised background power.
LPDDR3_ENERGY = DramEnergyParams(
    name="LPDDR3-1600",
    energy_per_zero_bit=16e-12,  # flip-per-zero under transition signaling
    energy_per_beat=0.07e-12,
    energy_activate_precharge=2.0e-9,  # 4 KB page
    energy_column_read=0.55e-9,
    energy_column_write=0.6e-9,
    energy_refresh_per_rank=25e-9,
    background_active_w=0.016,
    background_precharge_w=0.006,
)


@dataclass(frozen=True)
class SystemEnergyParams:
    """Whole-system (core + uncore + DRAM) power model, McPAT-style."""

    name: str
    core_active_w: float  # one core executing
    core_stall_w: float  # one core stalled on memory
    uncore_w: float  # L2, NoC, clocking

    def __post_init__(self) -> None:
        if not 0 <= self.core_stall_w <= self.core_active_w:
            raise ValueError("need 0 <= stall power <= active power")
        if self.uncore_w < 0:
            raise ValueError("uncore power must be non-negative")


# Niagara-like microserver: eight lean in-order cores (Section 6).
SERVER_SYSTEM_ENERGY = SystemEnergyParams(
    name="ddr4-server",
    core_active_w=0.85,
    core_stall_w=0.18,
    uncore_w=0.55,
)

# Snapdragon-like mobile SoC: energy-efficient OoO cores.
MOBILE_SYSTEM_ENERGY = SystemEnergyParams(
    name="lpddr3-mobile",
    core_active_w=0.20,
    core_stall_w=0.05,
    uncore_w=0.12,
)

"""Write-drain mode (Section 4.6; USIMM-style watermarks, Table 2).

The tWTR bus-turnaround penalty makes interleaving individual reads and
writes expensive, so the controller batches writes: it services reads
until the write queue fills to a *high watermark*, then drains writes
back-to-back until a *low watermark* is reached (or the write queue
empties), then switches back.  Table 2 configures 60/50 on 64-entry
queues.  The drain also engages opportunistically when there is no read
work at all.
"""

from __future__ import annotations

__all__ = ["WriteDrainPolicy"]


class WriteDrainPolicy:
    """Hysteresis state machine deciding reads-vs-writes each cycle."""

    def __init__(self, high_watermark: int, low_watermark: int, capacity: int):
        if not 0 <= low_watermark < high_watermark <= capacity:
            raise ValueError(
                "need 0 <= low < high <= capacity, got "
                f"{low_watermark}/{high_watermark}/{capacity}"
            )
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.capacity = capacity
        self.draining = False
        self.drain_entries = 0  # how many drain episodes started

    def update(self, write_queue_len: int, read_queue_len: int) -> bool:
        """Advance the state machine; returns True when writes go first."""
        if self.draining:
            if write_queue_len <= self.low_watermark:
                self.draining = False
        else:
            if write_queue_len >= self.high_watermark:
                self.draining = True
                self.drain_entries += 1
        # Opportunistic drain: no read work pending, writes available.
        if not self.draining and read_queue_len == 0 and write_queue_len > 0:
            return True
        return self.draining

"""Per-job event logs: append-only, seq-numbered, snapshot + tail.

Every job owns one :class:`EventLog`.  Events are plain dicts stamped
with a strictly increasing ``seq`` (0, 1, 2, ...) at append time, so
the log doubles as its own ordering proof: a subscriber that asks for
``since=N`` first receives every event with ``seq > N`` already in the
log (the *snapshot* — one consistent slice, no locks needed because the
list is append-only and all appends happen on the service's event
loop), then blocks for the live *tail* until the log is closed.

The service closes a job's log when the job reaches a terminal state;
subscribers drain whatever remains and stop.  Nothing here knows about
sockets — the HTTP layer turns the async iterator into NDJSON.
"""

from __future__ import annotations

import asyncio
import time

__all__ = ["EventLog", "make_event"]


def make_event(scope: str, kind: str, job: str, **fields) -> dict:
    """Build one event dict (``seq`` is assigned by the log at append).

    ``scope`` is ``"job"`` for lifecycle transitions and ``"run"`` for
    per-spec orchestration events (mirroring the campaign engine's
    :data:`~repro.campaign.events.EVENT_KINDS`).  ``ts`` is wall-clock
    and deliberately lives next to the payload, not inside it: every
    determinism assertion strips it, like scenario rows strip
    ``timing``.
    """
    event = {"scope": scope, "kind": kind, "job": job, "ts": time.time()}
    for key, value in fields.items():
        if value is not None:
            event[key] = value
    return event


class EventLog:
    """Append-only event sequence with async tail subscription."""

    def __init__(self) -> None:
        self._events: list[dict] = []
        self._closed = False
        # Lazily bound to the running loop on first async use; appends
        # themselves are synchronous so the scheduler can narrate from
        # non-async call sites (submit) on the loop thread.
        self._wakeup: asyncio.Event | None = None

    def __len__(self) -> int:
        return len(self._events)

    @property
    def closed(self) -> bool:
        return self._closed

    def _notify(self) -> None:
        if self._wakeup is not None:
            self._wakeup.set()

    def append(self, event: dict) -> dict:
        """Stamp ``seq`` onto ``event``, append, wake subscribers."""
        if self._closed:
            raise RuntimeError("append to a closed event log")
        event["seq"] = len(self._events)
        self._events.append(event)
        self._notify()
        return event

    def close(self) -> None:
        """Mark the log complete; tails drain and terminate."""
        self._closed = True
        self._notify()

    def snapshot(self, since: int = -1) -> list[dict]:
        """Events with ``seq > since``, as one consistent slice."""
        return self._events[since + 1:]

    async def subscribe(self, since: int = -1):
        """Yield events with ``seq > since`` until the log closes.

        The snapshot slice and the tail never overlap and never skip:
        ``seq`` values are list indices, so resuming from the last
        yielded index is gap-free by construction.
        """
        index = since + 1
        while True:
            while index < len(self._events):
                yield self._events[index]
                index += 1
            if self._closed:
                return
            if self._wakeup is None:
                self._wakeup = asyncio.Event()
            self._wakeup.clear()
            # Re-check under the cleared flag: an append between the
            # inner loop and clear() left new events behind.
            if index < len(self._events) or self._closed:
                continue
            await self._wakeup.wait()

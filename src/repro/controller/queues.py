"""Read and write transaction queues (Table 2: 64 entries each).

The write queue also implements *write coalescing*: a second writeback
to a line already queued overwrites the stale data in place, and a read
that hits the write queue is forwarded without touching DRAM — both
standard memory-controller behaviours that keep the write-drain
machinery honest.
"""

from __future__ import annotations

from .request import MemoryRequest

__all__ = ["TransactionQueue", "QueueFullError"]


class QueueFullError(RuntimeError):
    """Raised when a request is pushed into a full queue."""


class TransactionQueue:
    """Bounded FIFO-ordered queue with address lookup."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: list[MemoryRequest] = []
        self._by_address: dict[int, MemoryRequest] = {}
        # Per-bank index for the controller's incremental candidate
        # cache: (rank, bank_group, bank) -> queued requests in push
        # order, plus a monotonically increasing version per key so a
        # cached per-bank candidate can be validated in O(1).  Version
        # entries are never deleted — a bucket that empties and later
        # refills must not repeat an old version number.
        self._by_bank: dict[tuple[int, int, int], list[MemoryRequest]] = {}
        self._bank_version: dict[tuple[int, int, int], int] = {}
        self._seq = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def occupancy(self) -> float:
        """Fill fraction in [0, 1] (drives the drain watermarks)."""
        return len(self._entries) / self.capacity

    def find(self, address: int) -> MemoryRequest | None:
        """Request queued for ``address``, if any."""
        return self._by_address.get(address)

    def push(self, request: MemoryRequest, coalesce: bool = False) -> bool:
        """Enqueue ``request``.

        With ``coalesce`` (write queues), a request to an address already
        queued replaces the stale entry's payload instead of occupying a
        second slot; returns ``False`` in that case.
        """
        existing = self._by_address.get(request.address)
        if existing is not None and coalesce:
            existing.line_id = request.line_id
            existing.core = request.core
            return False
        if self.full:
            raise QueueFullError(
                f"queue of capacity {self.capacity} overflowed"
            )
        self._entries.append(request)
        # Last writer wins for lookup purposes.
        self._by_address[request.address] = request
        request.queue_seq = self._seq
        self._seq += 1
        m = request.mapped
        if m is not None:
            key = (m.rank, m.bank_group, m.bank)
            bucket = self._by_bank.get(key)
            if bucket is None:
                self._by_bank[key] = [request]
            else:
                bucket.append(request)
            self._bank_version[key] = self._bank_version.get(key, 0) + 1
        return True

    def remove(self, request: MemoryRequest) -> None:
        """Remove a scheduled request."""
        self._entries.remove(request)
        if self._by_address.get(request.address) is request:
            del self._by_address[request.address]
        m = request.mapped
        if m is not None:
            key = (m.rank, m.bank_group, m.bank)
            bucket = self._by_bank.get(key)
            if bucket is not None and request in bucket:
                bucket.remove(request)
                if not bucket:
                    del self._by_bank[key]
                self._bank_version[key] = self._bank_version.get(key, 0) + 1

    def bank_buckets(self) -> dict[tuple[int, int, int], list[MemoryRequest]]:
        """Live per-bank view: (rank, group, bank) -> requests, push order.

        Only address-mapped requests appear (the controller maps before
        it enqueues).  Callers must treat the dict and its lists as
        read-only.
        """
        return self._by_bank

    def bank_version(self, key: tuple[int, int, int]) -> int:
        """Monotonic change counter for one bank's bucket."""
        return self._bank_version.get(key, 0)

    def bank_versions(self) -> dict[tuple[int, int, int], int]:
        """Live version map behind :meth:`bank_version` (read-only).

        Every key present in :meth:`bank_buckets` is present here (the
        first push creates it), so hot loops may index directly.
        """
        return self._bank_version

    def oldest_first(self) -> list[MemoryRequest]:
        """Entries in arrival order (the FCFS axis of FR-FCFS).

        Pushes happen in non-decreasing arrival order in every caller
        (simulation time is monotonic), so insertion order *is* arrival
        order; a sort here would be pure overhead on the hot path.
        """
        return self._entries

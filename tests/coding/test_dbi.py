"""Tests for the DDR4 data bus inversion baseline code."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.coding import DBICode, dbi_zero_table
from repro.coding.bitops import bytes_to_bits, zeros_in_bits

CODE = DBICode()


def byte_bits(value: int) -> np.ndarray:
    return bytes_to_bits(np.array([value], dtype=np.uint8))


class TestEncode:
    def test_sparse_byte_passes_through(self):
        # 0xF7 has one zero: transmitted as-is, DBI bit high.
        code = CODE.encode(byte_bits(0xF7))
        assert code[..., 8] == 1
        assert (code[..., :8] == byte_bits(0xF7)).all()

    def test_dense_zero_byte_inverted(self):
        # 0x00 has eight zeros: inverted to 0xFF, DBI bit low.
        code = CODE.encode(byte_bits(0x00))
        assert code[..., 8] == 0
        assert code[..., :8].sum() == 8

    def test_exactly_four_zeros_not_inverted(self):
        # The standard inverts strictly when zeros > 4.
        code = CODE.encode(byte_bits(0x0F))
        assert code[..., 8] == 1

    def test_five_zeros_inverted(self):
        code = CODE.encode(byte_bits(0x07))
        assert code[..., 8] == 0


class TestInvariants:
    @given(st.integers(min_value=0, max_value=255))
    def test_round_trip(self, value):
        bits = byte_bits(value)
        assert (CODE.decode(CODE.encode(bits)) == bits).all()

    @given(st.integers(min_value=0, max_value=255))
    def test_zero_bound(self, value):
        # DBI guarantees at most four zeros per 9-bit group.
        code = CODE.encode(byte_bits(value))
        assert zeros_in_bits(code) <= 4

    @given(st.integers(min_value=0, max_value=255))
    def test_count_matches_encode(self, value):
        bits = byte_bits(value)
        assert CODE.count_zeros(bits) == zeros_in_bits(CODE.encode(bits))

    def test_batch_round_trip(self):
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, size=(64, 8), dtype=np.uint8)
        assert (CODE.decode(CODE.encode(bits)) == bits).all()


class TestTableAndFastPaths:
    def test_zero_table_spot_values(self):
        table = dbi_zero_table()
        assert table[0xFF] == 0  # no zeros, passthrough
        assert table[0x00] == 1  # inverted to 0xFF + low DBI bit
        assert table[0x0F] == 4  # four zeros, passthrough
        assert table[0x07] == 4  # five zeros -> invert: 3 + 1

    def test_count_zeros_bytes_matches_bits(self):
        rng = np.random.default_rng(4)
        data = rng.integers(0, 256, size=(20, 64), dtype=np.uint8)
        via_bytes = CODE.count_zeros_bytes(data)
        via_bits = CODE.count_zeros(bytes_to_bits(data))
        assert (via_bytes == via_bits).all()

    def test_encode_bytes_shape(self):
        data = np.zeros((5, 4), dtype=np.uint8)
        assert CODE.encode_bytes(data).shape == (5, 4, 9)

    def test_expansion(self):
        assert CODE.expansion == 9 / 8

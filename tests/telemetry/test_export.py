"""Exporters: metrics JSONL round-trip and Chrome trace-event output."""

import json

import pytest

from repro.telemetry import (
    TelemetrySession,
    chrome_trace_events,
    load_metrics_jsonl,
    write_chrome_trace,
    write_metrics_jsonl,
)


def _session(label="run", time_unit="cycles") -> TelemetrySession:
    session = TelemetrySession(label=label, time_unit=time_unit)
    session.registry.counter("dram.ch0.act_count").inc(7)
    session.registry.gauge("controller.ch0.drain.level").set(2.5)
    session.registry.histogram("controller.ch0.rdq.occupancy").observe(3)
    assert session.trace is not None
    session.trace.emit("burst", "bus.read", "X", ts=100.0, dur=4.0,
                       track="ch0.bus", args=(("scheme", "milc"),))
    session.trace.emit("drain", "controller", "i", ts=110.0, track="ch0.mc")
    return session


class TestMetricsJsonl:
    def test_round_trip(self, tmp_path):
        session = _session()
        path = write_metrics_jsonl(tmp_path / "m.metrics.jsonl", session)
        payload = load_metrics_jsonl(path)
        assert payload["meta"]["label"] == "run"
        assert payload["meta"]["time_unit"] == "cycles"
        assert payload["meta"]["trace_events"] == 2
        assert payload["metrics"] == session.metrics_payload()["metrics"]

    def test_one_metric_per_line(self, tmp_path):
        path = write_metrics_jsonl(tmp_path / "m.metrics.jsonl", _session())
        lines = path.read_text().splitlines()
        assert "meta" in json.loads(lines[0])
        assert len(lines) == 1 + 3
        for line in lines[1:]:
            assert "name" in json.loads(line)

    def test_empty_file_rejected(self, tmp_path):
        bad = tmp_path / "empty.jsonl"
        bad.write_text("")
        with pytest.raises(ValueError, match="empty metrics dump"):
            load_metrics_jsonl(bad)

    def test_missing_meta_header_rejected(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"name": "x", "kind": "counter", "value": 1}\n')
        with pytest.raises(ValueError, match="missing meta header"):
            load_metrics_jsonl(bad)

    def test_nameless_metric_line_rejected(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"meta": {}}\n{"kind": "counter", "value": 1}\n')
        with pytest.raises(ValueError, match="without a name"):
            load_metrics_jsonl(bad)


class TestChromeTrace:
    def test_events_carry_process_and_thread_names(self):
        events = chrome_trace_events(_session())
        metas = [e for e in events if e["ph"] == "M"]
        assert {"process_name", "thread_name"} <= {e["name"] for e in metas}
        names = [e["args"]["name"] for e in metas]
        assert "run" in names and "ch0.bus" in names and "ch0.mc" in names

    def test_cycle_timestamps_scale_through_cycle_ns(self):
        session = _session()
        session.cycle_ns = 2.0  # 0.5 GHz DRAM clock
        span = [e for e in chrome_trace_events(session) if e["ph"] == "X"][0]
        # 100 cycles * 2 ns / 1e3 = 0.2 us
        assert span["ts"] == pytest.approx(0.2)
        assert span["dur"] == pytest.approx(0.008)
        assert span["cat"] == "bus.read"
        assert span["args"] == {"scheme": "milc"}

    def test_second_timestamps_scale_to_microseconds(self):
        session = _session(label="campaign", time_unit="seconds")
        span = [e for e in chrome_trace_events(session) if e["ph"] == "X"][0]
        assert span["ts"] == pytest.approx(100.0 * 1e6)

    def test_instants_are_thread_scoped(self):
        instant = [
            e for e in chrome_trace_events(_session()) if e["ph"] == "i"
        ][0]
        assert instant["s"] == "t"

    def test_sessions_get_distinct_pids(self, tmp_path):
        run = _session()
        campaign = _session(label="campaign", time_unit="seconds")
        path = write_chrome_trace(tmp_path / "t.trace.json", run, campaign)
        document = json.loads(path.read_text())
        assert document["metadata"]["sessions"] == ["run", "campaign"]
        pids = {e["pid"] for e in document["traceEvents"]}
        assert pids == {0, 1}

    def test_traceless_session_exports_only_process_meta(self):
        session = TelemetrySession(trace_enabled=False)
        events = chrome_trace_events(session)
        assert [e["name"] for e in events] == ["process_name"]

"""Synchronous Python client for the job API.

One connection per request (the server closes after answering), JSON
in, JSON or NDJSON out.  This is the layer the ``repro submit`` and
``repro jobs`` CLI verbs are built on, and the reference for anyone
scripting against the service::

    from repro.serve import ServeClient

    client = ServeClient("unix:/tmp/serve.sock")
    job = client.submit_scenario(doc, namespace="ci")
    for event in client.events(job["id"]):   # snapshot + live tail
        print(event["seq"], event["kind"])
    rows = client.results(job["id"])

Back-pressure (HTTP 429) surfaces as :class:`BackPressureError`, which
subclasses :class:`ServeError`; everything else non-2xx raises
:class:`ServeError` with the server's message.
"""

from __future__ import annotations

import json
import socket

from .protocol import API_PREFIX, parse_address

__all__ = ["BackPressureError", "ServeClient", "ServeError"]

_CHUNK = 65536


class ServeError(RuntimeError):
    """A non-2xx answer from the service."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class BackPressureError(ServeError):
    """The service's work queue is full (HTTP 429); retry later."""


class ServeClient:
    """Minimal blocking client for one service address."""

    def __init__(self, address: str, timeout: float = 300.0):
        self.kind, self.target = parse_address(address)
        self.address = address
        self.timeout = timeout

    # -- transport ------------------------------------------------------
    def _connect(self) -> socket.socket:
        if self.kind == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.target)
            return sock
        return socket.create_connection(self.target, timeout=self.timeout)

    def _send(self, sock: socket.socket, method: str, path: str,
              body: dict | None) -> None:
        payload = b""
        if body is not None:
            payload = json.dumps(body).encode()
        head = (
            f"{method} {API_PREFIX}{path} HTTP/1.1\r\n"
            "Host: repro-serve\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        sock.sendall(head.encode() + payload)

    @staticmethod
    def _read_head(sock: socket.socket) -> tuple[int, dict, bytes]:
        """Read status line + headers; returns leftover body bytes."""
        buf = b""
        while b"\r\n\r\n" not in buf:
            chunk = sock.recv(_CHUNK)
            if not chunk:
                raise ServeError(0, "connection closed before headers")
            buf += chunk
        head, _, rest = buf.partition(b"\r\n\r\n")
        lines = head.decode("latin-1").split("\r\n")
        try:
            status = int(lines[0].split()[1])
        except (IndexError, ValueError):
            raise ServeError(0, f"malformed status line {lines[0]!r}")
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers, rest

    def _request(self, method: str, path: str, body: dict | None = None):
        """One-shot request; returns the decoded JSON body (or None)."""
        with self._connect() as sock:
            self._send(sock, method, path, body)
            status, headers, rest = self._read_head(sock)
            length = int(headers.get("content-length", -1))
            data = rest
            while length < 0 or len(data) < length:
                chunk = sock.recv(_CHUNK)
                if not chunk:
                    break
                data += chunk
        if length >= 0:
            data = data[:length]
        self._raise_for_status(status, data)
        if not data.strip():
            return None
        text = data.decode()
        if headers.get("content-type", "").startswith("application/x-ndjson"):
            return [json.loads(line) for line in text.splitlines() if line]
        return json.loads(text)

    def _stream(self, path: str):
        """Yield NDJSON documents from a streaming endpoint until EOF."""
        sock = self._connect()
        try:
            self._send(sock, "GET", path, None)
            status, _headers, rest = self._read_head(sock)
            buf = rest
            if status >= 300:
                while True:
                    chunk = sock.recv(_CHUNK)
                    if not chunk:
                        break
                    buf += chunk
                self._raise_for_status(status, buf)
            while True:
                while b"\n" in buf:
                    line, _, buf = buf.partition(b"\n")
                    if line.strip():
                        yield json.loads(line)
                chunk = sock.recv(_CHUNK)
                if not chunk:
                    break
                buf += chunk
            if buf.strip():
                yield json.loads(buf)
        finally:
            sock.close()

    @staticmethod
    def _raise_for_status(status: int, data: bytes) -> None:
        if status < 300:
            return
        try:
            message = json.loads(data.decode() or "{}").get("error", "")
        except ValueError:
            message = data.decode("latin-1", "replace")[:200]
        if status == 429:
            raise BackPressureError(status, message)
        raise ServeError(status, message)

    # -- API surface ----------------------------------------------------
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def metrics(self) -> dict:
        """One gauges/counters/fleet sample (``GET /v1/metrics``)."""
        return self._request("GET", "/metrics")

    def workers(self) -> dict:
        """The connected remote-worker fleet (``GET /v1/workers``)."""
        return self._request("GET", "/workers")

    def sweep(self) -> dict:
        return self._request("POST", "/sweep")

    def submit(self, payload: dict) -> dict:
        """Raw submission (see ``repro.serve.service.payload_specs``)."""
        return self._request("POST", "/jobs", payload)

    def submit_specs(self, specs, namespace: str = "default",
                     priority: int = 0, label: str | None = None) -> dict:
        """Submit canonical spec dicts (or RunSpec objects)."""
        canon = [
            s.canonical() if hasattr(s, "canonical") else s for s in specs
        ]
        return self.submit({
            "kind": "specs", "specs": canon, "namespace": namespace,
            "priority": priority, "label": label,
        })

    def submit_scenario(self, doc: dict, namespace: str = "default",
                        priority: int = 0,
                        label: str | None = None) -> dict:
        """Submit a normalized scenario document (compiled server-side)."""
        return self.submit({
            "kind": "scenario", "scenario": doc, "namespace": namespace,
            "priority": priority, "label": label,
        })

    def jobs(self, namespace: str | None = None,
             state: str | None = None) -> list:
        query = []
        if namespace:
            query.append(f"namespace={namespace}")
        if state:
            query.append(f"state={state}")
        suffix = f"?{'&'.join(query)}" if query else ""
        return self._request("GET", f"/jobs{suffix}") or []

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/jobs/{job_id}")

    def events(self, job_id: str, since: int = -1):
        """Stream events: backfill after ``since``, then the live tail.

        The generator ends when the job reaches a terminal state (the
        server closes the stream after the terminal event).
        """
        return self._stream(f"/jobs/{job_id}/events?since={since}")

    def results(self, job_id: str) -> list:
        """Completed result rows (cache key, canonical spec, summary)."""
        return list(self._stream(f"/jobs/{job_id}/results"))

    def wait(self, job_id: str) -> dict:
        """Block until the job is terminal; returns the final descriptor.

        Implemented over the event stream, so there is no polling loop
        and no missed transition: the stream's last event *is* the
        terminal transition.
        """
        for _event in self.events(job_id):
            pass
        return self.job(job_id)

"""Tests for the deterministic data-value models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import DataModel, WORD_CATEGORIES, splitmix64


class TestSplitmix:
    def test_deterministic(self):
        x = np.arange(100, dtype=np.uint64)
        assert (splitmix64(x) == splitmix64(x)).all()

    def test_mixes_adjacent_inputs(self):
        out = splitmix64(np.arange(1000, dtype=np.uint64))
        assert len(np.unique(out)) == 1000
        # Bits should be balanced across the outputs.
        bits = np.unpackbits(out.view(np.uint8))
        assert 0.45 < bits.mean() < 0.55


class TestDeterminism:
    def test_same_address_same_data(self):
        dm = DataModel({"random": 0.5, "fp": 0.5}, seed=3)
        addrs = np.array([0, 64, 4096, 64], dtype=np.int64)
        lines = dm.lines_for(addrs)
        assert (lines[1] == lines[3]).all()

    def test_order_independent(self):
        dm = DataModel({"int2": 0.5, "text": 0.5}, seed=4)
        a = dm.lines_for(np.array([0, 64, 128]))
        b = dm.lines_for(np.array([128, 0, 64]))
        assert (a[0] == b[1]).all()
        assert (a[2] == b[0]).all()

    def test_different_seeds_differ(self):
        addrs = np.arange(50, dtype=np.int64) * 64
        a = DataModel({"random": 1.0}, seed=1).lines_for(addrs)
        b = DataModel({"random": 1.0}, seed=2).lines_for(addrs)
        assert not (a == b).all()

    def test_offset_within_line_irrelevant(self):
        dm = DataModel({"random": 1.0})
        assert (dm.lines_for(np.array([128]))[0]
                == dm.lines_for(np.array([128 + 17]))[0]).all()


class TestCategories:
    def make(self, category):
        dm = DataModel({category: 1.0}, seed=5)
        return dm.lines_for(np.arange(200, dtype=np.int64) * 64)

    def test_zero_lines(self):
        assert self.make("zero").sum() == 0

    def test_int1_layout(self):
        lines = self.make("int1").reshape(-1, 8, 8)
        assert (lines[:, :, 1:] == 0).all()  # only the low byte nonzero

    def test_int2_layout(self):
        lines = self.make("int2").reshape(-1, 8, 8)
        assert (lines[:, :, 2:] == 0).all()

    def test_int4_layout(self):
        lines = self.make("int4").reshape(-1, 8, 8)
        assert (lines[:, :, 4:] == 0).all()
        assert lines[:, :, :4].any()

    def test_text_is_printable(self):
        lines = self.make("text")
        assert (lines >= 0x20).all() and (lines <= 0x7E).all()

    def test_repeat_is_constant_per_line(self):
        lines = self.make("repeat")
        for line in lines[:20]:
            assert len(np.unique(line)) == 1

    def test_fp_exponent_shared_within_line(self):
        lines = self.make("fp").reshape(-1, 8, 8)
        # Byte 7 (sign/exponent) identical across the line's words.
        assert (lines[:, :, 7] == lines[:, 0:1, 7]).all()
        assert np.isin(lines[:, :, 7], (0x3F, 0x40)).all()

    def test_fp_trailing_zeros_present(self):
        dm = DataModel({"fp": 1.0}, fp_trailing_zero_prob=1.0)
        lines = dm.lines_for(np.arange(50, dtype=np.int64) * 64)
        assert (lines.reshape(-1, 8, 8)[:, :, :2] == 0).all()

    def test_line_homogeneity(self):
        # A mixed model still gives homogeneous single lines: an all-int1
        # line never contains text bytes.
        dm = DataModel({"int1": 0.5, "text": 0.5}, seed=6)
        lines = dm.lines_for(np.arange(400, dtype=np.int64) * 64)
        for line in lines:
            words = line.reshape(8, 8)
            is_int1 = (words[:, 1:] == 0).all()
            is_text = ((words >= 0x20) & (words <= 0x7E)).all()
            assert is_int1 or is_text


class TestMixture:
    def test_shares_approximate_weights(self):
        dm = DataModel({"zero": 0.7, "random": 0.3}, seed=7)
        lines = dm.lines_for(np.arange(4000, dtype=np.int64) * 64)
        zero_share = (lines.sum(axis=1) == 0).mean()
        assert 0.62 < zero_share < 0.78

    def test_normalisation(self):
        dm = DataModel({"zero": 2.0, "random": 2.0})
        shares = dm.expected_category_shares()
        assert shares["zero"] == pytest.approx(0.5)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DataModel({"nonsense": 1.0})
        with pytest.raises(ValueError):
            DataModel({"zero": -1.0})
        with pytest.raises(ValueError):
            DataModel({})

    @settings(max_examples=20)
    @given(st.sampled_from(WORD_CATEGORIES))
    def test_every_category_generates(self, category):
        dm = DataModel({category: 1.0})
        lines = dm.lines_for(np.array([64]))
        assert lines.shape == (1, 64)

"""Campaign failure reporting: non-strict collection and CLI exit codes.

A campaign that loses runs must say so — ``strict=False`` runners
collect every failing spec instead of dying on the first one, and the
``repro campaign`` command turns that list into a non-zero exit status
with the failing cache keys printed at the end.
"""

import os

import pytest

from repro.campaign import CampaignRunner, RunSpec
from repro.campaign import runner as runner_module
from repro.campaign.cache import cache_key
from repro.cli import main

SCALE = 80
FP = "test-fp"


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "runs"))
    monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
    monkeypatch.delenv(runner_module.FAIL_ONCE_ENV, raising=False)


def _specs():
    return [
        RunSpec(benchmark=bench, policy=policy, accesses_per_core=SCALE)
        for bench in ("MM", "GUPS")
        for policy in ("dbi", "mil")
    ]


def _failing_execute(predicate):
    """Wrap the real executor to die persistently on matching specs."""
    real = runner_module._execute

    def execute(spec):
        if predicate(spec):
            raise RuntimeError(f"injected persistent failure: {spec.slug}")
        return real(spec)

    return execute


class TestNonStrictRunner:
    def test_collects_failures_and_keeps_going(self, monkeypatch):
        monkeypatch.setattr(
            runner_module, "_execute",
            _failing_execute(lambda s: s.policy == "mil"),
        )
        specs = _specs()
        events = []
        runner = CampaignRunner(jobs=1, sink=events.append, retries=0,
                                fingerprint=FP, strict=False)
        results = runner.run(specs)

        # The healthy half completed; the poisoned half is reported.
        assert sorted(s.policy for s in results) == ["dbi", "dbi"]
        assert runner.counters["failed"] == 2
        assert len(runner.failures) == 2
        for spec, error in runner.failures:
            assert spec.policy == "mil"
            assert "injected persistent failure" in error
        assert [e.kind for e in events].count("failed") == 2

    def test_strict_default_still_raises(self, monkeypatch):
        monkeypatch.setattr(
            runner_module, "_execute", _failing_execute(lambda s: True))
        runner = CampaignRunner(jobs=1, retries=0, fingerprint=FP)
        with pytest.raises(RuntimeError, match="injected persistent"):
            runner.run(_specs()[:1])
        assert runner.failures == []


class TestEventTimestamps:
    def test_events_carry_monotonic_shared_clock_stamps(self):
        spec = RunSpec(benchmark="MM", policy="dbi",
                       accesses_per_core=SCALE)
        events = []
        CampaignRunner(jobs=1, sink=events.append, fingerprint=FP).run(
            [spec])
        stamps = [e.ts for e in events]
        assert all(ts > 0 for ts in stamps)
        assert stamps == sorted(stamps)

    def test_timestamps_share_the_telemetry_clock(self):
        from repro.telemetry import monotonic_ts

        before = monotonic_ts()
        spec = RunSpec(benchmark="GUPS", policy="dbi",
                       accesses_per_core=SCALE)
        events = []
        CampaignRunner(jobs=1, sink=events.append, fingerprint=FP).run(
            [spec])
        after = monotonic_ts()
        assert all(before <= e.ts <= after for e in events)


class TestCampaignCli:
    def test_failed_campaign_exits_nonzero_and_names_keys(
            self, monkeypatch, capsys):
        monkeypatch.setattr(
            runner_module, "_execute", _failing_execute(lambda s: True))
        assert main(["campaign", "fig02", "--scale", str(SCALE),
                     "--no-report"]) == 1
        err = capsys.readouterr().err
        assert "campaign FAILED" in err
        assert "injected persistent failure" in err
        # Every failing run is named by its content-addressed key.
        from repro.campaign.fingerprint import model_fingerprint
        from repro.experiments import EXPERIMENT_PLANS

        specs = EXPERIMENT_PLANS["fig02"](accesses_per_core=SCALE)
        fp = model_fingerprint()
        for spec in specs:
            assert cache_key(spec, fp) in err

    def test_healthy_campaign_still_exits_zero(self, capsys):
        assert "PYTEST_CURRENT_TEST" in os.environ  # serial jobs
        assert main(["campaign", "fig02", "--scale", str(SCALE),
                     "--no-report"]) == 0
        err = capsys.readouterr().err
        assert "campaign FAILED" not in err
        assert "0 failed" in err

"""ResultStore: tenancy, LRU quotas, reference-counted GC, persistence."""

from __future__ import annotations

import json

import pytest

from repro.serve.store import ResultStore


def put_run(store: ResultStore, key: str) -> None:
    store.runs_dir.mkdir(parents=True, exist_ok=True)
    (store.runs_dir / f"{key}.json").write_text(
        json.dumps({"summary": {"key": key}})
    )


class TestRecording:
    def test_record_and_lru_order(self, tmp_path):
        store = ResultStore(tmp_path)
        store.record("a", ["k1", "k2"])
        store.record("a", ["k1"])  # re-access: k1 is now the newest
        assert store.keys("a") == ["k2", "k1"]

    def test_namespaces_are_independent(self, tmp_path):
        store = ResultStore(tmp_path)
        store.record("a", ["k1"])
        store.record("b", ["k2"])
        assert store.namespaces() == ["a", "b"]
        assert store.keys("a") == ["k1"]
        assert store.keys("b") == ["k2"]

    def test_usage_counts_bytes(self, tmp_path):
        store = ResultStore(tmp_path, quota=7)
        put_run(store, "k1")
        store.record("a", ["k1"])
        usage = store.usage("a")
        assert usage["keys"] == 1 and usage["bytes"] > 0
        assert usage["quota"] == 7

    def test_invalid_quota_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultStore(tmp_path, quota=0)


class TestSweep:
    def test_quota_evicts_lru_first(self, tmp_path):
        store = ResultStore(tmp_path, quotas={"a": 2})
        for k in ("k1", "k2", "k3"):
            put_run(store, k)
        store.record("a", ["k1"])
        store.record("a", ["k2"])
        store.record("a", ["k3"])
        report = store.sweep()
        assert report["evicted"] == {"a": 1}
        assert store.keys("a") == ["k2", "k3"]  # k1 was the LRU
        # k1's file is unreferenced now and got GC'd.
        assert not (store.runs_dir / "k1.json").exists()
        assert (store.runs_dir / "k2.json").exists()

    def test_gc_spares_keys_other_tenants_pin(self, tmp_path):
        store = ResultStore(tmp_path, quotas={"a": 1})
        for k in ("shared", "mine"):
            put_run(store, k)
        store.record("a", ["shared"])
        store.record("a", ["mine"])  # pushes "shared" over a's quota
        store.record("b", ["shared"])  # but b still pins it
        report = store.sweep()
        assert report["evicted"] == {"a": 1}
        assert report["removed_files"] == 0
        assert (store.runs_dir / "shared.json").exists()

    def test_gc_removes_orphan_files(self, tmp_path):
        store = ResultStore(tmp_path)
        put_run(store, "orphan")
        report = store.sweep()
        assert report["removed_files"] == 1
        assert not (store.runs_dir / "orphan.json").exists()

    def test_under_quota_sweep_is_a_noop(self, tmp_path):
        store = ResultStore(tmp_path, quota=10)
        put_run(store, "k1")
        store.record("a", ["k1"])
        assert store.sweep() == {"evicted": {}, "removed_files": 0}


class TestPersistence:
    def test_reload_preserves_recency(self, tmp_path):
        store = ResultStore(tmp_path)
        store.record("a", ["k1"])
        store.record("a", ["k2"])
        reloaded = ResultStore(tmp_path)
        assert reloaded.keys("a") == ["k1", "k2"]
        # The sequence keeps counting up, so new accesses stay newest.
        reloaded.record("a", ["k1"])
        assert reloaded.keys("a") == ["k2", "k1"]

    def test_corrupt_tenant_index_starts_empty(self, tmp_path):
        store = ResultStore(tmp_path)
        store.record("good", ["k1"])
        (store.tenants_dir / "bad.json").write_text("{not json")
        reloaded = ResultStore(tmp_path)
        assert reloaded.keys("good") == ["k1"]
        assert reloaded.keys("bad") == []

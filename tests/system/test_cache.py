"""Tests for the set-associative cache model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.system import Cache


class TestBasics:
    def test_miss_then_hit(self):
        cache = Cache(1024, 2)
        assert not cache.access(0, False).hit
        assert cache.access(0, False).hit

    def test_same_line_different_offsets_hit(self):
        cache = Cache(1024, 2)
        cache.access(128, False)
        assert cache.access(128 + 63, False).hit
        assert not cache.access(128 + 64, False).hit

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Cache(1000, 3)  # does not divide into sets
        with pytest.raises(ValueError):
            Cache(192, 1)  # 3 sets: not a power of two

    def test_miss_rate(self):
        cache = Cache(1024, 2)
        cache.access(0, False)
        cache.access(0, False)
        assert cache.miss_rate == pytest.approx(0.5)


class TestEviction:
    def test_lru_victim(self):
        cache = Cache(2 * 64, 2)  # one set, two ways
        cache.access(0, False)
        cache.access(1 << 12, False)
        cache.access(0, False)  # refresh line 0
        cache.access(2 << 12, False)  # evicts 1<<12, not 0
        assert cache.contains(0)
        assert not cache.contains(1 << 12)

    def test_dirty_eviction_reports_writeback(self):
        cache = Cache(2 * 64, 2)
        cache.access(0, True)
        cache.access(1 << 12, False)
        result = cache.access(2 << 12, False)
        assert result.writeback == 0
        assert cache.writebacks == 1

    def test_clean_eviction_silent(self):
        cache = Cache(2 * 64, 2)
        cache.access(0, False)
        cache.access(1 << 12, False)
        result = cache.access(2 << 12, False)
        assert result.writeback is None

    def test_write_hit_marks_dirty(self):
        cache = Cache(2 * 64, 2)
        cache.access(0, False)
        cache.access(0, True)  # hit, now dirty
        cache.access(1 << 12, False)
        result = cache.access(2 << 12, False)
        assert result.writeback == 0


class TestFillAndInvalidate:
    def test_fill_installs_without_counting_demand(self):
        cache = Cache(1024, 2)
        cache.fill(0)
        assert cache.contains(0)
        assert cache.hits == 0 and cache.misses == 0

    def test_fill_existing_merges_dirty(self):
        cache = Cache(1024, 2)
        cache.fill(0, dirty=True)
        cache.fill(0, dirty=False)
        assert cache.invalidate(0)  # still dirty

    def test_invalidate_returns_dirtiness(self):
        cache = Cache(1024, 2)
        cache.access(0, True)
        assert cache.invalidate(0) is True
        assert cache.invalidate(0) is False
        assert not cache.contains(0)

    def test_touch_refreshes_lru(self):
        cache = Cache(2 * 64, 2)
        cache.access(0, False)
        cache.access(1 << 12, False)
        cache.touch(0)
        cache.fill(2 << 12)
        assert cache.contains(0)


class TestProperties:
    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 16),
                    min_size=1, max_size=300))
    def test_capacity_never_exceeded(self, addresses):
        cache = Cache(4096, 4)
        for addr in addresses:
            cache.access(addr, False)
        for ways in cache._sets:
            assert len(ways) <= cache.ways

    @settings(max_examples=30)
    @given(st.lists(st.integers(min_value=0, max_value=1 << 14),
                    min_size=1, max_size=200))
    def test_hits_plus_misses_equals_accesses(self, addresses):
        cache = Cache(2048, 2)
        for addr in addresses:
            cache.access(addr, bool(addr & 1))
        assert cache.hits + cache.misses == len(addresses)

    def test_small_working_set_all_hits_after_warmup(self):
        cache = Cache(32 * 1024, 4)
        lines = np.arange(0, 8 * 1024, 64)
        for addr in lines:
            cache.access(int(addr), False)
        hits_before = cache.hits
        for addr in lines:
            assert cache.access(int(addr), False).hit
        assert cache.hits == hits_before + len(lines)

"""Synthetic versions of the Table 3 benchmark suite, plus the
scenario engine's mixed-arrival traffic synthesis."""

from .benchmarks import (
    BENCHMARK_ORDER,
    BENCHMARKS,
    DEFAULT_ACCESSES_PER_CORE,
    MEMORY_INTENSIVE,
    BenchmarkSpec,
    build_trace,
    clear_trace_cache,
    get_benchmark,
    known_benchmark,
    validate_benchmark,
)
from .datamodel import DataModel, WORD_CATEGORIES, biased_mix, splitmix64
from .mixed import MixNameError, MixSpec, build_mixed_trace, is_mix_name
from .trace import MemoryTrace, TraceRecord

__all__ = [
    "BENCHMARK_ORDER",
    "BENCHMARKS",
    "DEFAULT_ACCESSES_PER_CORE",
    "MEMORY_INTENSIVE",
    "BenchmarkSpec",
    "build_trace",
    "clear_trace_cache",
    "get_benchmark",
    "known_benchmark",
    "validate_benchmark",
    "DataModel",
    "WORD_CATEGORIES",
    "biased_mix",
    "splitmix64",
    "MixNameError",
    "MixSpec",
    "build_mixed_trace",
    "is_mix_name",
    "MemoryTrace",
    "TraceRecord",
]

"""Gate: the batched numpy kernels actually beat the reference oracle.

The backend slot exists so the pure-Python reference implementations
can serve as the correctness oracle while the vectorised numpy kernels
carry the hot path.  That division of labour is only honest if the
fast path is actually fast: for each gated scheme, the registered pair
``coding.encode_trace.<scheme>`` / ``coding.encode_trace_reference.
<scheme>`` (see ``repro.bench.suite``) times the same batched
``encode_lines`` workload — same corpus, same layout — through both
backends, and the numpy median must come out at least 3x ahead.

The observed margins are 15-200x; 3x leaves generous head-room for
slow CI machines while still catching a silent fall-back to
per-element Python in a rewritten kernel.
"""

import pytest

from repro.bench import get, measure

MIN_SPEEDUP = 3.0
ATTEMPTS = 3  # whole-comparison retries before failing
GATED_SCHEMES = ("milc", "cafo2", "3lwc")


@pytest.mark.parametrize("scheme", GATED_SCHEMES)
def test_numpy_kernel_beats_reference(scheme):
    fast = get(f"coding.encode_trace.{scheme}")
    oracle = get(f"coding.encode_trace_reference.{scheme}")

    best = 0.0
    for _ in range(ATTEMPTS):
        t_fast = measure(fast.build(), repeats=5, warmup=1,
                         inner_ops=fast.inner_ops).median_ns
        t_oracle = measure(oracle.build(), repeats=3, warmup=1,
                           inner_ops=oracle.inner_ops).median_ns
        speedup = t_oracle / t_fast
        best = max(best, speedup)
        if speedup >= MIN_SPEEDUP:
            return
    pytest.fail(
        f"{scheme}: numpy encode_trace speedup {best:.2f}x over the "
        f"reference backend is below the {MIN_SPEEDUP}x gate"
    )


@pytest.mark.parametrize("scheme", GATED_SCHEMES)
def test_gated_backends_agree(scheme):
    # The benchmarks time the same computation; prove it IS the same.
    fast_bits = get(f"coding.encode_trace.{scheme}").build()()
    oracle_bits = get(f"coding.encode_trace_reference.{scheme}").build()()
    assert fast_bits.shape == oracle_bits.shape
    assert (fast_bits == oracle_bits).all()

"""The event-heap driver must be invisible in every observable.

``REPRO_NO_EVENT_CACHE=1`` runs the lockstep oracle: the original
advance-everything loop with the controller recomputing its FR-FCFS
candidates from scratch each call.  The default path runs the
cross-channel event heap over the incremental candidate cache.  These
tests randomize the workload, the system shape (channels, ranks, page
policy, policy family, seed) and hold the pair to *byte identity*:
same command log, same data-bus transactions, same cycle counts, same
pending accrual — with the independent protocol auditor signing off on
the logs.  This is the oracle the whole event-core rebuild rides
behind (see DESIGN.md, "Event core").
"""

from __future__ import annotations

from dataclasses import replace

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.audit import ProtocolAuditor
from repro.controller import NO_EVENT_CACHE_ENV
from repro.system.machine import SYSTEMS
from repro.system.simulator import simulate
from repro.workloads.benchmarks import build_trace


def _simulate(name, config, seed, accesses, no_cache, monkeypatch):
    if no_cache:
        monkeypatch.setenv(NO_EVENT_CACHE_ENV, "1")
    else:
        monkeypatch.delenv(NO_EVENT_CACHE_ENV, raising=False)
    trace = build_trace(name, config, seed=seed, accesses_per_core=accesses)
    return simulate(trace, config, record_commands=True)


def _assert_byte_identical(cached, oracle, config):
    assert cached.cycles == oracle.cycles
    assert cached.pending_cycles == oracle.pending_cycles
    assert cached.demand_reads == oracle.demand_reads
    assert cached.read_latency_sum == oracle.read_latency_sum
    auditor = ProtocolAuditor(config.timing, config.geometry)
    for a, b in zip(cached.controllers, oracle.controllers):
        assert a.channel.command_log == b.channel.command_log
        assert a.channel.transactions == b.channel.transactions
        assert auditor.check(a.channel.command_log) == []


# Small scales keep each example fast; the grid still spans channels,
# benchmarks, policies, and seeds, and each example runs two full sims.
GRID = dict(
    bench=st.sampled_from(["GUPS", "CG", "MG"]),
    channels=st.sampled_from([1, 2, 4]),
    page_policy=st.sampled_from(["open", "closed"]),
    seed=st.integers(min_value=0, max_value=2**16),
    accesses=st.integers(min_value=8, max_value=48),
)


class TestEventHeapEquivalence:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(**GRID)
    def test_byte_identical_on_random_shapes(
        self, monkeypatch, bench, channels, page_policy, seed, accesses
    ):
        config = replace(
            SYSTEMS["ddr4-server"], channels=channels,
            page_policy=page_policy,
        )
        cached = _simulate(bench, config, seed, accesses, False, monkeypatch)
        oracle = _simulate(bench, config, seed, accesses, True, monkeypatch)
        _assert_byte_identical(cached, oracle, config)

    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_byte_identical_on_mobile_machine(self, monkeypatch, seed):
        config = SYSTEMS["lpddr3-mobile"]
        cached = _simulate("GUPS", config, seed, 32, False, monkeypatch)
        oracle = _simulate("GUPS", config, seed, 32, True, monkeypatch)
        _assert_byte_identical(cached, oracle, config)


class TestHeapCounters:
    def test_event_queue_is_exercised_and_laziness_observable(
        self, monkeypatch
    ):
        """A real run pops events and discards some stale entries.

        Superseded controller wakes stay in the heap until popped;
        a multi-channel run with enough traffic must both pop (the
        heap is the driver) and discard (invalidation is lazy, the
        design the ``pops``/``stale`` probe pair exists to watch).
        """
        monkeypatch.delenv(NO_EVENT_CACHE_ENV, raising=False)
        config = SYSTEMS["ddr4-server"]
        trace = build_trace("GUPS", config, seed=7, accesses_per_core=120)
        result = simulate(trace, config)
        assert result.stats["event_queue_pops"] > 0
        assert result.stats["event_queue_stale"] > 0
        assert (
            result.stats["event_queue_stale"]
            < result.stats["event_queue_pops"]
        )

    def test_lockstep_oracle_reports_zero_heap_activity(self, monkeypatch):
        monkeypatch.setenv(NO_EVENT_CACHE_ENV, "1")
        config = SYSTEMS["ddr4-server"]
        trace = build_trace("GUPS", config, seed=7, accesses_per_core=24)
        result = simulate(trace, config)
        assert result.stats["event_queue_pops"] == 0
        assert result.stats["event_queue_stale"] == 0
